"""Golden regression tests: the VM matcher path reproduces the naive path.

For a few small seed models, the optimizer is run once with the naive
interpretive matcher (the reference) and once with the compiled e-matching
VM + delta search.  Because both matchers return identical ordered match
lists, the exploration trajectories must coincide *bit-for-bit*: same e-graph
growth, same stop reason, same extracted cost.  Any divergence means the VM
changed the semantics of search, not just its speed.
"""

from __future__ import annotations

import pytest

from repro.core.config import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.models import build_model

#: Small, fast exploration budgets; golden tests check equivalence, not scale.
GOLDEN_CASES = [
    # (model, config overrides)
    ("nasrnn", dict(extraction="greedy")),
    ("resnext", dict(extraction="greedy", k_multi=2)),
    ("squeezenet", dict(extraction="ilp", ilp_time_limit=20.0)),
]

BASE = dict(node_limit=2_000, iter_limit=5, k_multi=1)


def _golden_record(model: str, overrides: dict, matcher: str) -> dict:
    config = TensatConfig(matcher=matcher, **{**BASE, **overrides})
    graph = build_model(model, "tiny")
    result = TensatOptimizer(config=config).optimize(graph)
    report = result.runner_report
    return {
        "num_enodes": result.stats.num_enodes,
        "original_cost": result.stats.original_cost,
        "optimized_cost": result.stats.optimized_cost,
        "stop_reason": result.stats.stop_reason,
        # Finer-grained trajectory data: any matcher divergence shows up here
        # before it shows up in the headline numbers.
        "iterations": report.num_iterations,
        "per_iteration_matches": tuple(it.n_matches for it in report.iterations),
        "per_iteration_applied": tuple(it.n_applied for it in report.iterations),
        "per_iteration_enodes": tuple(it.n_enodes for it in report.iterations),
    }


@pytest.mark.slow
@pytest.mark.parametrize("model,overrides", GOLDEN_CASES, ids=[m for m, _ in GOLDEN_CASES])
def test_vm_path_reproduces_naive_golden_record(model, overrides):
    golden = _golden_record(model, overrides, matcher="naive")
    vm = _golden_record(model, overrides, matcher="vm")
    assert vm == golden


@pytest.mark.slow
def test_delta_matching_off_matches_delta_on():
    """Disabling delta seeding must not change the trajectory either."""
    config = dict(BASE, extraction="greedy")
    graph = build_model("nasrnn", "tiny")
    with_delta = TensatOptimizer(config=TensatConfig(delta_matching=True, **config)).optimize(graph)
    without = TensatOptimizer(config=TensatConfig(delta_matching=False, **config)).optimize(graph)
    assert with_delta.stats.num_enodes == without.stats.num_enodes
    assert with_delta.stats.optimized_cost == without.stats.optimized_cost
    assert with_delta.stats.stop_reason == without.stats.stop_reason
