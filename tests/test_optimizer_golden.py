"""Golden regression tests: every search path reproduces the naive path.

For a few small seed models, the optimizer is run with the naive interpretive
matcher (the reference), the per-rule compiled e-matching VM + delta search,
and the shared-prefix rule trie.  All three search the same frozen e-graph
each iteration and return identical ordered match lists, so the exploration
trajectories must coincide *bit-for-bit*: same match counts, same apply plan,
same e-graph growth, same stop reason, same extracted cost.  Any divergence
means a search path changed the semantics of the pipeline, not just its
speed.
"""

from __future__ import annotations

import pytest

from repro.core.config import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.models import build_model

#: Small, fast exploration budgets; golden tests check equivalence, not scale.
GOLDEN_CASES = [
    # (model, config overrides)
    ("nasrnn", dict(extraction="greedy")),
    ("resnext", dict(extraction="greedy", k_multi=2)),
    ("squeezenet", dict(extraction="ilp", ilp_time_limit=20.0)),
]

BASE = dict(node_limit=2_000, iter_limit=5, k_multi=1)

#: The three search paths behind the one pipeline contract.
SEARCH_PATHS = [
    ("vm-per-rule", dict(matcher="vm", search_mode="per-rule")),
    ("vm-trie", dict(matcher="vm", search_mode="trie")),
]


def _golden_record(model: str, overrides: dict, **search_path) -> dict:
    config = TensatConfig(**{**BASE, **overrides, **search_path})
    graph = build_model(model, "tiny")
    result = TensatOptimizer(config=config).optimize(graph)
    report = result.runner_report
    return {
        "num_enodes": result.stats.num_enodes,
        "original_cost": result.stats.original_cost,
        "optimized_cost": result.stats.optimized_cost,
        "stop_reason": result.stats.stop_reason,
        # Finer-grained trajectory data: any matcher divergence shows up here
        # before it shows up in the headline numbers.
        "iterations": report.num_iterations,
        "per_iteration_matches": tuple(it.n_matches for it in report.iterations),
        "per_iteration_applied": tuple(it.n_applied for it in report.iterations),
        "per_iteration_deduped": tuple(it.n_deduped for it in report.iterations),
        "per_iteration_enodes": tuple(it.n_enodes for it in report.iterations),
    }


@pytest.mark.slow
@pytest.mark.parametrize("model,overrides", GOLDEN_CASES, ids=[m for m, _ in GOLDEN_CASES])
def test_vm_paths_reproduce_naive_golden_record(model, overrides):
    golden = _golden_record(model, overrides, matcher="naive")
    for name, search_path in SEARCH_PATHS:
        record = _golden_record(model, overrides, **search_path)
        assert record == golden, name


@pytest.mark.slow
def test_multipattern_hash_join_reproduces_product_golden_record():
    """The indexed multi-pattern join must not change the nasrnn trajectory.

    ``multipattern_join="product"`` is the executable spec (Algorithm 1's
    Cartesian product + filter); the hash join must walk the identical
    trajectory bit-for-bit, with multi-pattern rules active long enough
    (k_multi=2) for the join to matter.
    """
    overrides = dict(extraction="greedy", k_multi=2)
    golden = _golden_record("nasrnn", overrides, multipattern_join="product")
    record = _golden_record("nasrnn", overrides, multipattern_join="hash")
    assert record == golden


@pytest.mark.slow
@pytest.mark.parametrize("model", ["nasrnn", "resnext"])
def test_condition_cache_off_matches_on(model):
    """The condition-check cache must not change the trajectory.

    ``condition_cache="off"`` evaluates every shape/condition check directly;
    the memoizing cache must walk the identical trajectory bit-for-bit --
    generation invalidation means a cached verdict is only served while the
    bound e-classes are unchanged, so a divergence here is a stale verdict.
    k_multi=2 keeps multi-pattern combination checks (the hot path the cache
    targets) active across a rebuild boundary.
    """
    overrides = dict(extraction="greedy", k_multi=2)
    golden = _golden_record(model, overrides, condition_cache="off")
    record = _golden_record(model, overrides, condition_cache="memo")
    assert record == golden


@pytest.mark.slow
@pytest.mark.parametrize("model", ["nasrnn", "resnext"])
def test_shape_analysis_off_matches_on(model):
    """Compiled per-class shape facts must not change the trajectory.

    ``shape_analysis="off"`` re-runs bottom-up shape inference per candidate
    binding (the executable spec); ``"on"`` reads precomputed interned facts
    from the e-class analysis and runs compiled flat programs for the target
    spine.  Inference is a pure function of the bound classes' facts, so
    every condition verdict -- and therefore the whole trajectory -- must be
    bit-for-bit identical.  A divergence here means the analysis served a
    stale or wrongly-merged fact.  k_multi=2 keeps the multi-pattern
    combination checks (the hot path the analysis targets) active.
    ``condition_cache`` is pinned to "off" on both sides so this test
    isolates the analysis (the "auto" default resolves differently per
    side).
    """
    overrides = dict(extraction="greedy", k_multi=2, condition_cache="off")
    golden = _golden_record(model, overrides, shape_analysis="off")
    record = _golden_record(model, overrides, shape_analysis="on")
    assert record == golden


@pytest.mark.slow
@pytest.mark.parametrize("model", ["nasrnn", "resnext"])
def test_birth_stamps_bit_identical_across_search_paths(model):
    """Node birth stamps must not depend on the search path.

    Regression for the eager ``next()`` default in ``EGraph._repair``: every
    repaired parent burned a birth stamp even when the canonical node
    inherited one, so stamps (which cycle filtering uses to pick the newest
    node) depended on rebuild order.  With the fix, the full
    ``node -> stamp`` map is bit-for-bit identical across matcher=naive,
    matcher=vm (per-rule), and the trie search mode.
    """
    from repro.core.session import OptimizationSession

    def birth_map(**search_path):
        config = TensatConfig(**{**BASE, "extraction": "greedy", **search_path})
        session = OptimizationSession(build_model(model, "tiny"), config=config)
        session.explore()
        return dict(session.egraph._node_birth)

    golden = birth_map(matcher="naive")
    assert birth_map(matcher="vm", search_mode="per-rule") == golden
    assert birth_map(matcher="vm", search_mode="trie") == golden


@pytest.mark.slow
def test_delta_matching_off_matches_delta_on():
    """Disabling delta seeding must not change the trajectory either."""
    config = dict(BASE, extraction="greedy")
    graph = build_model("nasrnn", "tiny")
    with_delta = TensatOptimizer(config=TensatConfig(delta_matching=True, **config)).optimize(graph)
    without = TensatOptimizer(config=TensatConfig(delta_matching=False, **config)).optimize(graph)
    assert with_delta.stats.num_enodes == without.stats.num_enodes
    assert with_delta.stats.optimized_cost == without.stats.optimized_cost
    assert with_delta.stats.stop_reason == without.stats.stop_reason
