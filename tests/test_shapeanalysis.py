"""Tests for the e-class shape analysis (interned per-e-class tensor facts).

Covers the interning contract (structurally equal facts are one object), the
``merge`` conflict behaviour, the repair propagation through the e-graph, and
a hypothesis property pinning the analysis data to the on-demand inference
oracle after arbitrary add/union/rebuild sequences.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph.egraph import EGraph
from repro.egraph.language import RecExpr
from repro.egraph.shapeanalysis import (
    TensorShapeAnalysis,
    intern_data,
    intern_table_size,
)
from repro.ir.shapes import infer_symbol
from repro.ir.tensor import ShapeError, TensorData

# --------------------------------------------------------------------- #
# Strategies: ewadd/ewmul trees over shaped input leaves.  Mismatched
# shapes are deliberately reachable (ewadd of (8, 8) and (4, 4)), so the
# strategies exercise the invalid-data paths too.
# --------------------------------------------------------------------- #

SHAPES = ((8, 8), (4, 4), (2, 6))


def _leaf(name, shape):
    dims = " ".join(str(d) for d in shape)
    return f'(input "{name}@{dims}")'


_leaves = st.builds(_leaf, st.sampled_from("abcd"), st.sampled_from(SHAPES))


def tensor_terms():
    return st.recursive(
        _leaves,
        lambda children: st.builds(
            lambda op, left, right: f"({op} {left} {right})",
            st.sampled_from(("ewadd", "ewmul")),
            children,
            children,
        ),
        max_leaves=8,
    )


def _oracle(expr: RecExpr) -> TensorData:
    """On-demand bottom-up inference over a term -- the executable spec."""
    vals = []
    for node in expr.nodes:
        children = [vals[c] for c in node.children]
        try:
            vals.append(infer_symbol(node.op, children))
        except ShapeError as exc:
            vals.append(TensorData.invalid(str(exc)))
    return vals[expr.root]


def _assert_fixpoint(eg: EGraph) -> None:
    """Every e-class's data is interned and absorbs a re-make of its nodes."""
    analysis = eg.analysis
    for eclass_id, node in eg.enodes():
        data = eg.analysis_data(eg.find(eclass_id))
        assert data is not None
        assert intern_data(data) is data
        remade = analysis.make(eg, eg.canonicalize(node))
        merged, changed = analysis.merge(data, remade)
        assert not changed, (
            f"class {eg.find(eclass_id)} data {data} is stale: "
            f"re-making {node} gives {remade} (merged: {merged})"
        )


# --------------------------------------------------------------------- #
# Interning
# --------------------------------------------------------------------- #


class TestInterning:
    def test_structurally_equal_facts_are_one_object(self):
        a = TensorData.tensor((8, 8))
        b = TensorData.tensor((8, 8))
        assert a is not b
        assert intern_data(a) is intern_data(b)

    def test_interning_is_idempotent(self):
        a = intern_data(TensorData.tensor((3, 5)))
        assert intern_data(a) is a

    def test_tuple_parts_are_interned_too(self):
        t1 = TensorData.tuple_of((TensorData.tensor((2, 3)), TensorData.tensor((4, 1))))
        t2 = TensorData.tuple_of((TensorData.tensor((2, 3)), TensorData.tensor((4, 1))))
        c1, c2 = intern_data(t1), intern_data(t2)
        assert c1 is c2
        for part in c1.parts:
            assert intern_data(part) is part

    def test_table_only_grows(self):
        before = intern_table_size()
        intern_data(TensorData.tensor((before + 101, 7)))
        after = intern_table_size()
        assert after == before + 1
        intern_data(TensorData.tensor((before + 101, 7)))
        assert intern_table_size() == after


# --------------------------------------------------------------------- #
# merge()
# --------------------------------------------------------------------- #


class TestMerge:
    def test_strict_raises_on_shape_conflict(self):
        analysis = TensorShapeAnalysis(strict=True)
        with pytest.raises(ShapeError, match="different shapes"):
            analysis.merge(TensorData.tensor((8, 8)), TensorData.tensor((4, 4)))

    def test_nonstrict_keeps_survivor_and_counts_conflicts(self):
        analysis = TensorShapeAnalysis()
        a, b = TensorData.tensor((8, 8)), TensorData.tensor((4, 4))
        merged, changed = analysis.merge(a, b)
        assert merged is intern_data(a)
        assert not changed
        assert analysis.n_conflicts == 1
        assert analysis.last_conflict == (intern_data(a), intern_data(b))
        # The conflict counter keeps accumulating.
        analysis.merge(a, b)
        assert analysis.n_conflicts == 2

    def test_valid_data_preferred_over_invalid(self):
        analysis = TensorShapeAnalysis()
        invalid = TensorData.invalid("bad operand")
        valid = TensorData.tensor((8, 8))
        merged, changed = analysis.merge(invalid, valid)
        assert merged is intern_data(valid) and changed
        merged, changed = analysis.merge(valid, invalid)
        assert merged is intern_data(valid) and not changed
        assert analysis.n_conflicts == 0

    def test_split_records_unioned(self):
        a = TensorData.tensor((8, 8)).with_split(0, (4, 4))
        b = TensorData.tensor((8, 8)).with_split(1, (2, 6))
        merged, changed = TensorShapeAnalysis().merge(a, b)
        assert changed
        assert merged.split_sizes_for_axis(0) == (4, 4)
        assert merged.split_sizes_for_axis(1) == (2, 6)
        assert intern_data(merged) is merged

    def test_merge_results_are_interned(self):
        analysis = TensorShapeAnalysis()
        merged, _ = analysis.merge(TensorData.tensor((9, 9)), TensorData.tensor((9, 9)))
        assert intern_data(merged) is merged
        merged, _ = analysis.merge(None, TensorData.tensor((9, 9)))
        assert intern_data(merged) is merged


# --------------------------------------------------------------------- #
# Repair propagation through the e-graph
# --------------------------------------------------------------------- #


class TestAnalysisRepair:
    def test_union_valid_into_invalid_repairs_parents(self):
        # (ewadd a(4,4) b(8,8)) is shape-invalid, and so is its relu parent.
        # Unioning the ewadd class with a valid (8, 8) class must propagate
        # the now-valid fact to the parent -- in *either* union direction
        # (the loser-side direction regressed once: when the winner already
        # held the merged data, the loser's parents were never re-made).
        eg = EGraph(analysis=TensorShapeAnalysis())
        bad = eg.add_term('(ewadd (input "a@4 4") (input "b@8 8"))')
        parent = eg.add_term('(relu (ewadd (input "a@4 4") (input "b@8 8")))')
        assert not eg.analysis_data(bad).is_valid
        assert not eg.analysis_data(parent).is_valid

        good = eg.add_term('(input "c@8 8")')
        eg.union(bad, good)
        eg.rebuild()

        assert eg.analysis_data(eg.find(bad)).shape == (8, 8)
        assert eg.analysis_data(eg.find(parent)).is_valid
        assert eg.analysis_data(eg.find(parent)).shape == (8, 8)
        _assert_fixpoint(eg)

    def test_chain_of_parents_repaired_transitively(self):
        eg = EGraph(analysis=TensorShapeAnalysis())
        inner = eg.add_term('(ewadd (input "a@4 4") (input "b@8 8"))')
        outer = eg.add_term(
            '(ewmul (relu (ewadd (input "a@4 4") (input "b@8 8"))) (input "d@8 8"))'
        )
        assert not eg.analysis_data(outer).is_valid
        eg.union(inner, eg.add_term('(input "c@8 8")'))
        eg.rebuild()
        assert eg.analysis_data(eg.find(outer)).is_valid
        _assert_fixpoint(eg)


# --------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------- #


class TestProperties:
    @given(tensor_terms())
    @settings(max_examples=60, deadline=None)
    def test_analysis_data_matches_inference_oracle(self, term):
        eg = EGraph(analysis=TensorShapeAnalysis())
        expr = RecExpr.parse(term)
        root = eg.add_expr(expr)
        data = eg.analysis_data(root)
        expected = _oracle(expr)
        assert data.is_valid == expected.is_valid
        if expected.is_valid:
            assert data == intern_data(expected)
        _assert_fixpoint(eg)

    @given(
        st.lists(tensor_terms(), min_size=2, max_size=4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_fixpoint_and_interning_after_random_unions(self, terms, rnd):
        eg = EGraph(analysis=TensorShapeAnalysis())
        roots = [eg.add_expr(RecExpr.parse(t)) for t in terms]
        for _ in range(len(roots) * 2):
            eg.union(rnd.choice(roots), rnd.choice(roots))
            if rnd.random() < 0.5:
                eg.rebuild()
        eg.rebuild()
        _assert_fixpoint(eg)
