"""Numerical verification of the entire rule library.

Every rule registered in the library carries example operand shapes; this test
materialises both sides of every rule and checks they compute identical
values, which is the reproduction's analogue of TASO's rule verification.
"""

import pytest

from repro.rules import default_ruleset, rule_registry
from repro.rules.verify import VerificationResult, pattern_to_graph, verify_rule

ALL_RULES = rule_registry()


class TestLibraryShape:
    def test_library_has_both_kinds(self):
        summary = ALL_RULES.summary()
        assert summary["single"] >= 30
        assert summary["multi"] >= 4

    def test_every_rule_has_example_bindings(self):
        for rule_def in ALL_RULES:
            assert rule_def.example, f"rule {rule_def.name} has no example bindings"

    def test_rule_names_unique(self):
        names = ALL_RULES.names()
        assert len(names) == len(set(names))

    def test_filtering_by_tag(self):
        merges = ALL_RULES.filter(include_tags=["merge"])
        assert len(merges) >= 3
        assert all("merge" in d.tags for d in merges)

    def test_filtering_by_kind(self):
        assert all(not d.is_multi for d in ALL_RULES.filter(include_multi=False))
        assert all(d.is_multi for d in ALL_RULES.filter(include_single=False))

    def test_get_by_name(self):
        d = ALL_RULES.get("matmul-merge-shared-lhs")
        assert d.is_multi
        with pytest.raises(KeyError):
            ALL_RULES.get("no-such-rule")

    def test_default_ruleset_without_multi(self):
        rs = default_ruleset(include_multi=False)
        assert rs.multi_rewrites == []


@pytest.mark.parametrize("rule_def", list(ALL_RULES), ids=lambda d: d.name)
def test_rule_is_numerically_sound(rule_def):
    result = verify_rule(rule_def)
    assert result.ok, f"{rule_def.name}: {result.message}"


class TestVerifier:
    def test_pattern_to_graph_builds_expected_shapes(self):
        rule_def = ALL_RULES.get("matmul-merge-shared-lhs")
        graph = pattern_to_graph(rule_def.rule.targets[0], rule_def.example)
        assert graph.num_compute_nodes() >= 1

    def test_verifier_catches_unsound_rule(self):
        from repro.egraph.rewrite import Rewrite
        from repro.rules.defs import RuleDef

        bogus = RuleDef(
            Rewrite.parse("bogus", "(ewadd ?x ?y)", "(ewmul ?x ?y)"),
            example={"x": ("input", (4, 4)), "y": ("input", (4, 4))},
        )
        result = verify_rule(bogus)
        assert not result.ok

    def test_verifier_reports_missing_example(self):
        from repro.egraph.rewrite import Rewrite
        from repro.rules.defs import RuleDef

        rule = RuleDef(Rewrite.parse("r", "(ewadd ?x ?y)", "(ewadd ?y ?x)"))
        result = verify_rule(rule)
        assert not result.ok
        assert "example" in result.message
