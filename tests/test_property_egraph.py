"""Property-based tests (hypothesis) for the e-graph substrate."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import sexpr as sx
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.language import ENode, RecExpr
from repro.egraph.unionfind import UnionFind

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

atoms = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)


def sexpr_trees(max_depth=4):
    return st.recursive(
        atoms,
        lambda children: st.lists(children, min_size=1, max_size=3).map(
            lambda kids: ["op" + str(len(kids))] + kids
        ),
        max_leaves=8,
    )


@st.composite
def union_scripts(draw):
    """A number of elements plus a list of (a, b) unions over them."""
    n = draw(st.integers(min_value=1, max_value=20))
    n_unions = draw(st.integers(min_value=0, max_value=30))
    pairs = [
        (draw(st.integers(min_value=0, max_value=n - 1)), draw(st.integers(min_value=0, max_value=n - 1)))
        for _ in range(n_unions)
    ]
    return n, pairs


# --------------------------------------------------------------------- #
# S-expressions
# --------------------------------------------------------------------- #


class TestSExprProperties:
    @given(sexpr_trees())
    @settings(max_examples=60, deadline=None)
    def test_to_string_parse_roundtrip(self, tree):
        assert sx.parse(sx.to_string(tree)) == tree

    @given(sexpr_trees())
    @settings(max_examples=60, deadline=None)
    def test_recexpr_roundtrip_preserves_text(self, tree):
        text = sx.to_string(tree)
        assert str(RecExpr.parse(text)) == text


# --------------------------------------------------------------------- #
# Union-find
# --------------------------------------------------------------------- #


class TestUnionFindProperties:
    @given(union_scripts())
    @settings(max_examples=80, deadline=None)
    def test_find_is_idempotent_and_unions_hold(self, script):
        n, pairs = script
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(n)]
        for a, b in pairs:
            uf.union(ids[a], ids[b])
        for i in ids:
            assert uf.find(uf.find(i)) == uf.find(i)
        for a, b in pairs:
            assert uf.find(ids[a]) == uf.find(ids[b])

    @given(union_scripts())
    @settings(max_examples=80, deadline=None)
    def test_roots_partition_elements(self, script):
        n, pairs = script
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(n)]
        for a, b in pairs:
            uf.union(ids[a], ids[b])
        roots = set(uf.roots())
        assert all(uf.find(i) in roots for i in ids)
        # The number of roots equals n minus the number of effective merges.
        effective = n - len(roots)
        assert 0 <= effective <= len(pairs)


# --------------------------------------------------------------------- #
# E-graph invariants
# --------------------------------------------------------------------- #


class TestEGraphProperties:
    @given(sexpr_trees())
    @settings(max_examples=50, deadline=None)
    def test_added_term_is_represented(self, tree):
        eg = EGraph()
        expr = RecExpr.from_sexpr(tree)
        root = eg.add_expr(expr)
        assert eg.represents(root, expr)

    @given(sexpr_trees())
    @settings(max_examples=50, deadline=None)
    def test_adding_twice_is_idempotent(self, tree):
        eg = EGraph()
        expr = RecExpr.from_sexpr(tree)
        a = eg.add_expr(expr)
        size = eg.num_enodes
        b = eg.add_expr(expr)
        assert a == b
        assert eg.num_enodes == size

    @given(st.lists(sexpr_trees(), min_size=2, max_size=4), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_congruence_invariant_after_random_unions(self, trees, rnd):
        eg = EGraph()
        roots = [eg.add_expr(RecExpr.from_sexpr(t)) for t in trees]
        # Randomly union some roots, then rebuild.
        for _ in range(len(roots)):
            a, b = rnd.choice(roots), rnd.choice(roots)
            eg.union(a, b)
        eg.rebuild()
        # Congruence: identical canonical e-nodes live in exactly one e-class.
        seen = {}
        for eclass_id, node in eg.enodes():
            canonical = eg.canonicalize(node)
            if canonical in seen:
                assert eg.find(seen[canonical]) == eg.find(eclass_id)
            else:
                seen[canonical] = eclass_id

    @given(st.lists(sexpr_trees(), min_size=2, max_size=4), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_enode_counter_matches_recomputed_sum(self, trees, rnd):
        # num_enodes is an O(1) maintained counter; it must equal the full
        # per-class sum after arbitrary add/union/rebuild sequences (adds,
        # hash-cons duplicates, unions merging node lists, repair dedup).
        eg = EGraph()
        roots = []
        for t in trees:
            roots.append(eg.add_expr(RecExpr.from_sexpr(t)))
            assert eg.num_enodes == sum(len(c.nodes) for c in eg.classes())
        for _ in range(len(roots) * 2):
            eg.union(rnd.choice(roots), rnd.choice(roots))
            if rnd.random() < 0.5:
                eg.rebuild()
            assert eg.num_enodes == sum(len(c.nodes) for c in eg.classes())
        eg.rebuild()
        assert eg.num_enodes == sum(len(c.nodes) for c in eg.classes())
        assert len(eg) == eg.num_enodes

    @given(sexpr_trees())
    @settings(max_examples=40, deadline=None)
    def test_extraction_returns_represented_term_of_no_higher_cost(self, tree):
        eg = EGraph()
        expr = RecExpr.from_sexpr(tree)
        root = eg.add_expr(expr)
        node_cost = lambda enode, egraph: 1.0
        greedy = GreedyExtractor(node_cost).extract(eg, root)
        ilp = ILPExtractor(node_cost).extract(eg, root)
        assert eg.represents(root, greedy.expr)
        assert eg.represents(root, ilp.expr)
        # Without rewrites the only represented term is the original (modulo sharing).
        assert ilp.cost <= greedy.cost + 1e-9
        assert greedy.cost <= expr.subterm_size() + 1e-9
