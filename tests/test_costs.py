"""Tests for the cost models."""

import pytest

from repro.backend.runtime import measure_graph_runtime, speedup_percent
from repro.costs import AnalyticCostModel, DeviceProfile, MeasuredCostModel, TableCostModel
from repro.costs.device import CPU_REFERENCE, T4
from repro.costs.flops import op_bytes, op_flops
from repro.costs.model import INVALID_COST
from repro.ir.convert import egraph_from_graph
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation
from repro.ir.shapes import infer_symbol
from repro.ir.tensor import TensorData


def T(*shape, **kw):
    return TensorData.tensor(shape, **kw)


def I(v):
    return TensorData.integer(v)


class TestFlops:
    def test_matmul_flops(self):
        out = infer_symbol("matmul", [I(0), T(4, 8), T(8, 16)])
        assert op_flops("matmul", [I(0), T(4, 8), T(8, 16)], out) == pytest.approx(2 * 4 * 8 * 16)

    def test_conv_flops(self):
        children = [I(1), I(1), I(0), I(0), T(1, 8, 14, 14), T(16, 8, 3, 3)]
        out = infer_symbol("conv", children)
        expected = 2 * out.num_elements * 8 * 3 * 3
        assert op_flops("conv", children, out) == pytest.approx(expected)

    def test_data_movement_ops_have_zero_flops(self):
        out = infer_symbol("concat2", [I(1), T(4, 8), T(4, 8)])
        assert op_flops("concat2", [I(1), T(4, 8), T(4, 8)], out) == 0.0

    def test_bytes_count_reads_and_writes(self):
        out = infer_symbol("ewadd", [T(4, 8), T(4, 8)])
        assert op_bytes("ewadd", [T(4, 8), T(4, 8)], out) == pytest.approx(4 * (32 + 32 + 32))


class TestAnalyticCostModel:
    def test_bigger_matmul_costs_more(self):
        cm = AnalyticCostModel()
        small = cm.op_cost("matmul", [I(0), T(4, 8), T(8, 16)])
        big = cm.op_cost("matmul", [I(0), T(64, 256), T(256, 512)])
        assert big > small > 0

    def test_merged_matmul_cheaper_than_two(self):
        """The economics that make the Figure-2 rewrite profitable."""
        cm = AnalyticCostModel()
        two = 2 * cm.op_cost("matmul", [I(0), T(8, 64), T(64, 128)])
        merged = cm.op_cost("matmul", [I(0), T(8, 64), T(64, 256)])
        assert merged < two

    def test_weight_only_ops_are_free(self):
        cm = AnalyticCostModel()
        cost = cm.op_cost("concat2", [I(0), T(64, 32, from_weights=True), T(64, 32, from_weights=True)])
        assert cost == 0.0

    def test_activation_concat_is_not_free(self):
        cm = AnalyticCostModel()
        assert cm.op_cost("concat2", [I(0), T(64, 32), T(64, 32)]) > 0.0

    def test_split_is_free(self):
        cm = AnalyticCostModel()
        x = infer_symbol("concat2", [I(1), T(4, 8), T(4, 8)])
        tup = infer_symbol("split", [I(1), x])
        assert cm.op_cost("split", [I(1), x], tup) == 0.0

    def test_parameter_nodes_are_free(self):
        cm = AnalyticCostModel()
        assert cm.op_cost("3", []) == 0.0
        assert cm.op_cost("input", [TensorData.string("x@4 4")]) == 0.0

    def test_fused_activation_cheaper_than_separate(self):
        cm = AnalyticCostModel()
        fused = cm.op_cost("matmul", [I(1), T(32, 64), T(64, 64)])
        unfused = cm.op_cost("matmul", [I(0), T(32, 64), T(64, 64)]) + cm.op_cost("relu", [T(32, 64)])
        assert fused < unfused

    def test_enode_cost_uses_analysis_data(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        eg, root = egraph_from_graph(g)
        cm = AnalyticCostModel()
        matmul_node = next(n for cid, n in eg.enodes() if n.op == "matmul")
        assert cm.enode_cost(matmul_node, eg) > 0

    def test_device_profile_changes_costs(self):
        slow = AnalyticCostModel(CPU_REFERENCE)
        fast = AnalyticCostModel(T4)
        children = [I(0), T(64, 256), T(256, 512)]
        assert slow.op_cost("matmul", children) > fast.op_cost("matmul", children)

    def test_invalid_enode_gets_invalid_cost(self):
        from repro.egraph.egraph import EGraph
        from repro.ir.convert import TensorAnalysis

        eg = EGraph(analysis=TensorAnalysis())
        cls = eg.add_term('(ewadd (input "x@4 8") (input "y@4 9"))')
        cm = AnalyticCostModel()
        bad_node = next(n for cid, n in eg.enodes() if n.op == "ewadd")
        assert cm.enode_cost(bad_node, eg) == INVALID_COST


class TestTableCostModel:
    def test_lookup_and_default(self):
        cm = TableCostModel({"matmul": 3.0}, default=1.0)
        assert cm.op_cost("matmul", []) == 3.0
        assert cm.op_cost("relu", [T(2, 2)]) == 1.0

    def test_non_compute_defaults_to_zero(self):
        cm = TableCostModel({}, default=1.0)
        assert cm.op_cost("input", [TensorData.string("x@2 2")]) == 0.0

    def test_fallback_model(self):
        cm = TableCostModel({"relu": 9.0}, fallback=AnalyticCostModel())
        assert cm.op_cost("relu", [T(2, 2)]) == 9.0
        assert cm.op_cost("matmul", [I(0), T(4, 8), T(8, 16)]) > 0


class TestMeasuredCostModel:
    def test_measures_and_caches(self):
        cm = MeasuredCostModel(repeats=1, warmup=0)
        children = [I(0), T(16, 32), T(32, 64)]
        first = cm.op_cost("matmul", children)
        second = cm.op_cost("matmul", children)
        assert first > 0
        assert first == second  # cache hit returns the identical value

    def test_ranks_sizes_consistently(self):
        cm = MeasuredCostModel(repeats=1, warmup=0)
        small = cm.op_cost("matmul", [I(0), T(8, 16), T(16, 16)])
        big = cm.op_cost("matmul", [I(0), T(128, 256), T(256, 256)])
        assert big > small


class TestRuntimeSimulation:
    def test_measure_graph_runtime_equals_cost_without_noise(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        cm = AnalyticCostModel()
        assert measure_graph_runtime(g, cm) == pytest.approx(cm.graph_cost(g))

    def test_noise_is_bounded_and_reproducible(self):
        import numpy as np

        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        cm = AnalyticCostModel()
        rng = np.random.default_rng(0)
        noisy = measure_graph_runtime(g, cm, noise=0.05, rng=rng, repeats=5)
        base = cm.graph_cost(g)
        assert abs(noisy - base) / base < 0.2

    def test_speedup_percent(self):
        assert speedup_percent(2.0, 1.0) == pytest.approx(100.0)
        assert speedup_percent(1.0, 1.0) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            speedup_percent(1.0, 0.0)
