"""Tests for the union-find."""

from repro.egraph.unionfind import UnionFind


class TestUnionFind:
    def test_make_set_returns_sequential_ids(self):
        uf = UnionFind()
        assert [uf.make_set() for _ in range(4)] == [0, 1, 2, 3]

    def test_fresh_sets_are_their_own_roots(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(5)]
        assert all(uf.find(i) == i for i in ids)

    def test_union_merges(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        uf.union(a, b)
        assert uf.find(a) == uf.find(b)

    def test_union_is_transitive(self):
        uf = UnionFind()
        a, b, c = uf.make_set(), uf.make_set(), uf.make_set()
        uf.union(a, b)
        uf.union(b, c)
        assert uf.find(a) == uf.find(c)

    def test_union_returns_new_root(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        root = uf.union(a, b)
        assert root in (a, b)
        assert uf.find(a) == root

    def test_union_idempotent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        first = uf.union(a, b)
        second = uf.union(a, b)
        assert first == second

    def test_disjoint_sets_stay_separate(self):
        uf = UnionFind()
        a, b, c, d = (uf.make_set() for _ in range(4))
        uf.union(a, b)
        uf.union(c, d)
        assert uf.find(a) != uf.find(c)

    def test_in_same_set(self):
        uf = UnionFind()
        a, b, c = (uf.make_set() for _ in range(3))
        uf.union(a, b)
        assert uf.in_same_set(a, b)
        assert not uf.in_same_set(a, c)

    def test_roots(self):
        uf = UnionFind()
        a, b, c = (uf.make_set() for _ in range(3))
        uf.union(a, b)
        roots = uf.roots()
        assert len(roots) == 2
        assert uf.find(c) in roots

    def test_len(self):
        uf = UnionFind()
        for _ in range(7):
            uf.make_set()
        assert len(uf) == 7

    def test_chain_union_all_equivalent(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(50)]
        for i in range(49):
            uf.union(ids[i], ids[i + 1])
        root = uf.find(ids[0])
        assert all(uf.find(i) == root for i in ids)
        assert len(uf.roots()) == 1
