"""Tests for patterns: parsing, variables, canonicalization, instantiation."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode, RecExpr
from repro.egraph.pattern import Pattern, PatternNode, PatternVar


class TestParsing:
    def test_variable(self):
        p = Pattern.parse("?x")
        assert isinstance(p.root, PatternVar)
        assert p.root.name == "x"

    def test_operator_node(self):
        p = Pattern.parse("(ewadd ?x ?y)")
        assert isinstance(p.root, PatternNode)
        assert p.root.op == "ewadd"
        assert len(p.root.children) == 2

    def test_nested(self):
        p = Pattern.parse("(relu (matmul 0 ?a ?b))")
        assert p.ops() == ["relu", "matmul", "0"]

    def test_variable_as_operator_rejected(self):
        with pytest.raises(ValueError):
            Pattern.parse("(?f ?x)")

    def test_str_roundtrip(self):
        text = "(ewadd ?x (ewmul ?y ?z))"
        assert str(Pattern.parse(text)) == text


class TestVariables:
    def test_order_of_first_appearance(self):
        p = Pattern.parse("(f ?b (g ?a ?b))")
        assert p.variables() == ["b", "a"]

    def test_ground_pattern(self):
        p = Pattern.parse("(f a b)")
        assert p.is_ground()
        assert p.variables() == []

    def test_size_counts_operators_only(self):
        p = Pattern.parse("(f ?x (g ?y))")
        assert p.size() == 2


class TestCanonicalize:
    def test_renames_in_order(self):
        p = Pattern.parse("(matmul ?act ?input1 ?input2)")
        canonical, rename = p.canonicalize()
        assert str(canonical) == "(matmul ?c0 ?c1 ?c2)"
        assert rename == {"c0": "act", "c1": "input1", "c2": "input2"}

    def test_alpha_equivalent_patterns_share_canonical_form(self):
        a = Pattern.parse("(matmul ?act ?x ?w1)")
        b = Pattern.parse("(matmul ?a ?b ?c)")
        assert str(a.canonicalize()[0]) == str(b.canonicalize()[0])

    def test_repeated_variable_keeps_single_name(self):
        p = Pattern.parse("(ewadd ?x ?x)")
        canonical, rename = p.canonicalize()
        assert str(canonical) == "(ewadd ?c0 ?c0)"
        assert rename == {"c0": "x"}


class TestInstantiate:
    def test_instantiate_adds_structure(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        p = Pattern.parse("(ewadd ?x ?y)")
        root = p.instantiate(eg, {"x": a, "y": b})
        assert eg.represents(root, RecExpr.parse("(ewadd a b)"))

    def test_instantiate_missing_variable_raises(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        p = Pattern.parse("(ewadd ?x ?y)")
        with pytest.raises(KeyError):
            p.instantiate(eg, {"x": a})

    def test_substituted_leaves(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        p = Pattern.parse("(f ?x (g ?y))")
        assert p.substituted_leaves({"x": a, "y": b}) == [a, b]


class TestToRecExpr:
    def test_ground(self):
        p = Pattern.parse("(f a (g b))")
        assert str(p.to_recexpr()) == "(f a (g b))"

    def test_with_bindings(self):
        p = Pattern.parse("(ewadd ?x ?x)")
        sub = RecExpr.parse("(relu t)")
        expr = p.to_recexpr({"x": sub})
        assert str(expr) == "(ewadd (relu t) (relu t))"
        # shared binding is structurally shared
        assert len(expr.nodes) == 3

    def test_unbound_variable_raises(self):
        p = Pattern.parse("(f ?x)")
        with pytest.raises(ValueError):
            p.to_recexpr()
