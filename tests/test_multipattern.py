"""Tests for multi-pattern rewrites (paper Algorithm 1).

The hash-join tests treat the Cartesian-product combine as the executable
specification: for every scenario -- hand-built and property-generated --
``combine(join="hash")`` must return a list *identical* to
``combine(join="product")``, element for element and in the same order,
because the saturation trajectory depends on that order.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import search_pattern
from repro.egraph.language import RecExpr
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.egraph.runner import Runner, RunnerLimits


def matmul_merge_rule(condition=None):
    """The paper's Figure-2 rule (without shape checking unless provided)."""
    return MultiPatternRewrite.parse(
        "matmul-merge",
        sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
        targets=[
            "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
        ],
        condition=condition,
    )


def shared_input_egraph():
    eg = EGraph()
    root = eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2))")
    return eg, root


class TestConstruction:
    def test_mismatched_outputs_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite.parse("bad", ["(f ?x)", "(g ?x)"], ["(h ?x)"])

    def test_unbound_target_variable_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite.parse("bad", ["(f ?x)"], ["(g ?y)"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite(name="bad", sources=[], targets=[])


class TestSearch:
    def test_finds_compatible_combination(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        combos = rule.search(eg)
        # (m1, m2) and (m2, m1): identical pairs are skipped by skip_identical.
        assert len(combos) == 2
        for combo in combos:
            assert len(set(combo.eclasses)) == 2

    def test_incompatible_shared_variable_rejected(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 y w2))")
        combos = matmul_merge_rule().search(eg)
        # The two matmuls do not share ?x, so the only surviving combinations
        # pair each matmul with itself -- and those are skipped.
        assert combos == []

    def test_skip_identical_can_be_disabled(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        rule.skip_identical = False
        combos = rule.search(eg)
        assert len(combos) == 4  # (m1,m1), (m1,m2), (m2,m1), (m2,m2)

    def test_condition_filters_combinations(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule(condition=lambda g, m: False)
        assert rule.search(eg) == []

    def test_max_combinations_cap(self):
        eg, _ = shared_input_egraph()
        combos = matmul_merge_rule().search(eg, max_combinations=1)
        assert len(combos) <= 1


class TestApply:
    def test_apply_unions_both_outputs(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        combos = rule.search(eg)
        assert rule.apply_match(eg, combos[0])
        eg.rebuild()
        m1 = eg.add_term("(matmul 0 x w1)")
        assert eg.represents(m1, RecExpr.parse("(split0 (split 1 (matmul 0 x (concat2 1 w1 w2))))")) or \
            eg.represents(m1, RecExpr.parse("(split1 (split 1 (matmul 0 x (concat2 1 w2 w1))))"))

    def test_runner_applies_multi_rules_only_before_kmulti(self):
        eg, _ = shared_input_egraph()
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[matmul_merge_rule()],
            limits=RunnerLimits(iter_limit=4, k_multi=0),
        )
        report = runner.run()
        # k_multi = 0: multi rules never fire, e-graph saturates immediately.
        assert report.iterations[0].n_applied == 0

    def test_runner_with_kmulti_one_grows_egraph(self):
        eg, _ = shared_input_egraph()
        before = eg.num_enodes
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[matmul_merge_rule()],
            limits=RunnerLimits(iter_limit=4, k_multi=1),
        )
        runner.run()
        assert eg.num_enodes > before


class TestSearcherSharing:
    def test_alpha_equivalent_sources_share_canonical_patterns(self):
        rule_a = matmul_merge_rule()
        rule_b = MultiPatternRewrite.parse(
            "other-merge",
            sources=["(matmul ?act ?input ?wa)", "(matmul ?act ?input ?wb)"],
            targets=["?wa", "?wb"],
        )
        searcher = MultiPatternSearcher([rule_a, rule_b])
        # All four source patterns are alpha-equivalent -> one canonical pattern.
        assert searcher.num_unique_patterns == 1

    def test_searcher_results_match_standalone_search(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        searcher = MultiPatternSearcher([rule])
        results = searcher.search(eg)
        assert len(results) == 1
        _, combos = results[0]
        standalone = rule.search(eg)
        assert {c.eclasses for c in combos} == {c.eclasses for c in standalone}

    def test_search_canonical_plus_combine_equals_search(self):
        """The split halves compose back into exactly what search() returns."""
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        searcher = MultiPatternSearcher([rule])
        canonical = searcher.search_canonical(eg)
        assert set(canonical) == {key for key, _ in searcher.canonical_patterns()}
        recombined = searcher.combine_matches(eg, canonical)
        assert recombined == searcher.search(eg)


# --------------------------------------------------------------------- #
# Hash join == Cartesian product (the executable spec)
# --------------------------------------------------------------------- #


def three_source_rule(condition=None):
    """All three sources share ?a and ?x; w1/w2/w3 are free per source."""
    return MultiPatternRewrite.parse(
        "matmul-merge-three",
        sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)", "(matmul ?a ?x ?w3)"],
        targets=["?w1", "?w2", "?w3"],
        condition=condition,
    )


def zero_shared_rule(condition=None):
    """No variable is shared between the sources: the join degenerates to a product."""
    return MultiPatternRewrite.parse(
        "relu-sqrt-pair",
        sources=["(relu ?x)", "(sqrt ?y)"],
        targets=["?x", "?y"],
        condition=condition,
    )


def assert_join_equals_product(egraph, rule, max_combinations=None):
    per_source = [search_pattern(egraph, p) for p in rule.sources]
    product = rule.combine(egraph, per_source, max_combinations, join="product")
    hashed = rule.combine(egraph, per_source, max_combinations, join="hash")
    assert hashed == product  # same combinations, same order
    return product


class TestHashJoinEqualsProduct:
    def test_basic_shared_input(self):
        eg, _ = shared_input_egraph()
        combos = assert_join_equals_product(eg, matmul_merge_rule())
        assert len(combos) == 2

    def test_zero_shared_variables_pure_product(self):
        eg = EGraph()
        eg.add_term("(noop (relu a) (relu b) (sqrt c) (sqrt d) (sqrt e))")
        combos = assert_join_equals_product(eg, zero_shared_rule())
        # Every (relu, sqrt) pairing is compatible: 2 x 3 combinations.
        assert len(combos) == 6

    def test_variable_shared_across_all_three_sources(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2) (matmul 0 x w3))")
        combos = assert_join_equals_product(eg, three_source_rule())
        # All 27 triples agree on ?a and ?x; only the 3 fully-identical
        # triples are dropped by skip_identical.
        assert len(combos) == 24

    def test_three_sources_with_incompatible_matches(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2) (matmul 0 y w3))")
        combos = assert_join_equals_product(eg, three_source_rule())
        # Triples drawing from the ?y matmul never agree on ?x with the other
        # two, so only the two x-matmuls (and self-pairings) survive.
        assert combos and all(len(set(c.eclasses)) <= 2 for c in combos)

    def test_join_respects_multicondition(self):
        eg, _ = shared_input_egraph()
        condition = lambda g, m: m.subst["w1"] < m.subst["w2"]  # noqa: E731
        rule = matmul_merge_rule(condition=condition)
        combos = assert_join_equals_product(eg, rule)
        # The symmetric pair is filtered down to the one ordered combination.
        assert len(combos) == 1
        assert all(c.subst["w1"] < c.subst["w2"] for c in combos)

    def test_join_respects_multicondition_on_three_sources(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2) (matmul 0 x w3))")
        condition = lambda g, m: len({m.subst["w1"], m.subst["w2"], m.subst["w3"]}) == 3  # noqa: E731
        combos = assert_join_equals_product(eg, three_source_rule(condition=condition))
        assert len(combos) == 6  # the 3! orderings of the three distinct weights

    def test_max_combinations_truncation_parity(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2) (matmul 0 x w3))")
        rule = three_source_rule()
        full = assert_join_equals_product(eg, rule)
        for cap in (0, 1, 2, 5, 11, 26, 27, 100):
            truncated = assert_join_equals_product(eg, rule, max_combinations=cap)
            # Truncation keeps a prefix of the full (enumeration-ordered) list.
            assert truncated == full[: len(truncated)]

    def test_cap_bounds_join_work_on_zero_shared_sources(self):
        """Regression: with no shared variables the join degenerates to a
        product, and a tight ``max_combinations`` must bound the *work*, not
        just filter a fully materialised product afterwards.  400x400 source
        lists with cap=5 must both stay fast and keep product parity."""
        eg = EGraph()
        relus = " ".join(f"(relu a{i})" for i in range(400))
        sqrts = " ".join(f"(sqrt b{i})" for i in range(400))
        eg.add_term(f"(noop {relus} {sqrts})")
        rule = zero_shared_rule()
        start = time.perf_counter()
        combos = assert_join_equals_product(eg, rule, max_combinations=5)
        elapsed = time.perf_counter() - start
        assert len(combos) == 5
        # Generous bound: pre-fix this materialised 160k merged dicts; the
        # pruned join touches ~800 matches plus 5 survivors.
        assert elapsed < 2.0

    def test_cap_prunes_three_source_join_steps(self):
        eg = EGraph()
        matmuls = " ".join(f"(matmul 0 x w{i})" for i in range(12))
        eg.add_term(f"(noop {matmuls})")
        rule = three_source_rule()
        for cap in (1, 7, 13, 144, 1000):
            assert_join_equals_product(eg, rule, max_combinations=cap)

    def test_skip_identical_disabled_parity(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        rule.skip_identical = False
        combos = assert_join_equals_product(eg, rule)
        assert len(combos) == 4

    def test_empty_source_short_circuits(self):
        eg = EGraph()
        eg.add_term("(relu a)")  # no sqrt anywhere: one source has no matches
        assert assert_join_equals_product(eg, zero_shared_rule()) == []

    def test_unknown_join_rejected(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        with pytest.raises(ValueError):
            rule.combine(eg, [[], []], join="nested-loop")


# --------------------------------------------------------------------- #
# Property-based: join == product on random e-graphs
# --------------------------------------------------------------------- #

JOIN_OPS = [("matmul", 3), ("relu", 1), ("sqrt", 1), ("ewadd", 2)]
JOIN_LEAVES = ["a", "b", "x", "y", "w1", "w2", "0", "1"]


@st.composite
def join_term_sexprs(draw, depth=3):
    if depth == 0 or draw(st.integers(min_value=0, max_value=2)) == 0:
        return draw(st.sampled_from(JOIN_LEAVES))
    op, arity = draw(st.sampled_from(JOIN_OPS))
    return [op] + [draw(join_term_sexprs(depth=depth - 1)) for _ in range(arity)]


@st.composite
def join_egraphs(draw):
    trees = draw(st.lists(join_term_sexprs(), min_size=2, max_size=5))
    egraph = EGraph()
    for tree in trees:
        egraph.add_expr(RecExpr.from_sexpr(tree))
    ids = egraph.eclass_ids()
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        a = draw(st.integers(min_value=0, max_value=len(ids) - 1))
        b = draw(st.integers(min_value=0, max_value=len(ids) - 1))
        egraph.union(ids[a], ids[b])
    egraph.rebuild()
    return egraph


JOIN_RULES = [matmul_merge_rule(), three_source_rule(), zero_shared_rule()]


class TestHashJoinProperties:
    @given(join_egraphs(), st.sampled_from([None, 1, 3, 10, 50]))
    @settings(max_examples=40, deadline=None)
    def test_join_equals_product_on_random_egraphs(self, egraph, cap):
        for rule in JOIN_RULES:
            assert_join_equals_product(egraph, rule, max_combinations=cap)

    @given(join_egraphs())
    @settings(max_examples=20, deadline=None)
    def test_searcher_join_equals_product_on_random_egraphs(self, egraph):
        searcher = MultiPatternSearcher(JOIN_RULES)
        canonical = searcher.search_canonical(egraph)
        product = searcher.combine_matches(egraph, canonical, join="product")
        hashed = searcher.combine_matches(egraph, canonical, join="hash")
        assert hashed == product


# --------------------------------------------------------------------- #
# Runner trajectory parity: join mode and search path are invisible
# --------------------------------------------------------------------- #


def _runner_trajectory(**limit_overrides):
    eg = EGraph()
    eg.add_term(
        "(noop (relu (matmul 0 x w1)) (sqrt (matmul 0 x w2)) (matmul 0 x w3))"
    )
    limits = RunnerLimits(iter_limit=4, k_multi=2, node_limit=4_000, **limit_overrides)
    runner = Runner(
        eg,
        rewrites=[],
        multi_rewrites=[matmul_merge_rule(), three_source_rule()],
        limits=limits,
    )
    report = runner.run()
    return (
        report.stop_reason,
        report.n_enodes,
        report.n_eclasses,
        tuple(it.n_matches for it in report.iterations),
        tuple(it.n_applied for it in report.iterations),
        tuple(it.n_deduped for it in report.iterations),
    )


class TestRunnerJoinParity:
    def test_hash_and_product_runs_identical(self):
        assert _runner_trajectory(multipattern_join="hash") == _runner_trajectory(
            multipattern_join="product"
        )

    def test_all_search_paths_identical_with_multi_rules(self):
        golden = _runner_trajectory(matcher="naive")
        assert _runner_trajectory(matcher="vm", search_mode="per-rule") == golden
        assert _runner_trajectory(matcher="vm", search_mode="trie") == golden

    def test_trie_admission_with_single_and_multi_rules(self):
        """Multi canonical sources ride the same trie as single-rule LHSs."""
        from repro.rules import default_ruleset

        ruleset = default_ruleset()
        records = {}
        for mode in ("naive", "per-rule", "trie"):
            eg = EGraph()
            eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2))")
            limits = RunnerLimits(
                iter_limit=3,
                k_multi=1,
                node_limit=3_000,
                matcher="vm" if mode != "naive" else "naive",
                search_mode=mode if mode != "naive" else "trie",
            )
            runner = Runner(
                eg,
                rewrites=ruleset.rewrites,
                multi_rewrites=ruleset.multi_rewrites,
                limits=limits,
            )
            report = runner.run()
            records[mode] = (
                report.n_enodes,
                tuple(it.n_matches for it in report.iterations),
                tuple(it.n_applied for it in report.iterations),
            )
        assert records["per-rule"] == records["naive"]
        assert records["trie"] == records["naive"]

    def test_runner_rejects_unknown_join(self):
        with pytest.raises(ValueError):
            Runner(EGraph(), limits=RunnerLimits(multipattern_join="zip"))

    def test_multi_join_seconds_reported(self):
        eg, _ = shared_input_egraph()
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[matmul_merge_rule()],
            limits=RunnerLimits(iter_limit=2, k_multi=1),
        )
        report = runner.run()
        assert report.iterations[0].multi_join_seconds >= 0.0
        assert report.multi_join_seconds == pytest.approx(
            sum(it.multi_join_seconds for it in report.iterations)
        )
