"""Tests for multi-pattern rewrites (paper Algorithm 1)."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.language import RecExpr
from repro.egraph.multipattern import MultiPatternRewrite, MultiPatternSearcher
from repro.egraph.runner import Runner, RunnerLimits


def matmul_merge_rule(condition=None):
    """The paper's Figure-2 rule (without shape checking unless provided)."""
    return MultiPatternRewrite.parse(
        "matmul-merge",
        sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
        targets=[
            "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
        ],
        condition=condition,
    )


def shared_input_egraph():
    eg = EGraph()
    root = eg.add_term("(noop (matmul 0 x w1) (matmul 0 x w2))")
    return eg, root


class TestConstruction:
    def test_mismatched_outputs_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite.parse("bad", ["(f ?x)", "(g ?x)"], ["(h ?x)"])

    def test_unbound_target_variable_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite.parse("bad", ["(f ?x)"], ["(g ?y)"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiPatternRewrite(name="bad", sources=[], targets=[])


class TestSearch:
    def test_finds_compatible_combination(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        combos = rule.search(eg)
        # (m1, m2) and (m2, m1): identical pairs are skipped by skip_identical.
        assert len(combos) == 2
        for combo in combos:
            assert len(set(combo.eclasses)) == 2

    def test_incompatible_shared_variable_rejected(self):
        eg = EGraph()
        eg.add_term("(noop (matmul 0 x w1) (matmul 0 y w2))")
        combos = matmul_merge_rule().search(eg)
        # The two matmuls do not share ?x, so the only surviving combinations
        # pair each matmul with itself -- and those are skipped.
        assert combos == []

    def test_skip_identical_can_be_disabled(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        rule.skip_identical = False
        combos = rule.search(eg)
        assert len(combos) == 4  # (m1,m1), (m1,m2), (m2,m1), (m2,m2)

    def test_condition_filters_combinations(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule(condition=lambda g, m: False)
        assert rule.search(eg) == []

    def test_max_combinations_cap(self):
        eg, _ = shared_input_egraph()
        combos = matmul_merge_rule().search(eg, max_combinations=1)
        assert len(combos) <= 1


class TestApply:
    def test_apply_unions_both_outputs(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        combos = rule.search(eg)
        assert rule.apply_match(eg, combos[0])
        eg.rebuild()
        m1 = eg.add_term("(matmul 0 x w1)")
        assert eg.represents(m1, RecExpr.parse("(split0 (split 1 (matmul 0 x (concat2 1 w1 w2))))")) or \
            eg.represents(m1, RecExpr.parse("(split1 (split 1 (matmul 0 x (concat2 1 w2 w1))))"))

    def test_runner_applies_multi_rules_only_before_kmulti(self):
        eg, _ = shared_input_egraph()
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[matmul_merge_rule()],
            limits=RunnerLimits(iter_limit=4, k_multi=0),
        )
        report = runner.run()
        # k_multi = 0: multi rules never fire, e-graph saturates immediately.
        assert report.iterations[0].n_applied == 0

    def test_runner_with_kmulti_one_grows_egraph(self):
        eg, _ = shared_input_egraph()
        before = eg.num_enodes
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[matmul_merge_rule()],
            limits=RunnerLimits(iter_limit=4, k_multi=1),
        )
        runner.run()
        assert eg.num_enodes > before


class TestSearcherSharing:
    def test_alpha_equivalent_sources_share_canonical_patterns(self):
        rule_a = matmul_merge_rule()
        rule_b = MultiPatternRewrite.parse(
            "other-merge",
            sources=["(matmul ?act ?input ?wa)", "(matmul ?act ?input ?wb)"],
            targets=["?wa", "?wb"],
        )
        searcher = MultiPatternSearcher([rule_a, rule_b])
        # All four source patterns are alpha-equivalent -> one canonical pattern.
        assert searcher.num_unique_patterns == 1

    def test_searcher_results_match_standalone_search(self):
        eg, _ = shared_input_egraph()
        rule = matmul_merge_rule()
        searcher = MultiPatternSearcher([rule])
        results = searcher.search(eg)
        assert len(results) == 1
        _, combos = results[0]
        standalone = rule.search(eg)
        assert {c.eclasses for c in combos} == {c.eclasses for c in standalone}
