"""Tests for the numpy operator kernels (reference semantics)."""

import numpy as np
import pytest

from repro.backend.kernels import apply_activation, conv2d, execute_symbol, pool2d
from repro.ir.ops import Activation, Padding
from repro.ir.shapes import infer_symbol
from repro.ir.tensor import ShapeError, TensorData


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(apply_activation(x, Activation.RELU), [0.0, 0.0, 2.0])

    def test_sigmoid_range(self):
        x = np.linspace(-5, 5, 11)
        y = apply_activation(x, Activation.SIGMOID)
        assert np.all((y > 0) & (y < 1))

    def test_tanh(self):
        x = np.array([0.0, 1.0])
        assert np.allclose(apply_activation(x, Activation.TANH), np.tanh(x))

    def test_none_is_identity(self):
        x = np.array([1.0, -2.0])
        assert apply_activation(x, Activation.NONE) is x

    def test_unknown_mode_raises(self):
        with pytest.raises(ShapeError):
            apply_activation(np.zeros(2), 7)


def reference_conv(x, w, stride, padding):
    """Straightforward quadruple-loop convolution used as ground truth."""
    n, c_in, h, win = x.shape
    c_out, c_in_g, kh, kw = w.shape
    groups = c_in // c_in_g
    c_out_g = c_out // groups
    sh, sw = stride
    if padding == Padding.SAME:
        out_h = int(np.ceil(h / sh))
        out_w = int(np.ceil(win / sw))
        pad_h = max((out_h - 1) * sh + kh - h, 0)
        pad_w = max((out_w - 1) * sw + kw - win, 0)
        x = np.pad(x, ((0, 0), (0, 0), (pad_h // 2, pad_h - pad_h // 2), (pad_w // 2, pad_w - pad_w // 2)))
    else:
        out_h = (h - kh) // sh + 1
        out_w = (win - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for g in range(groups):
            for oc in range(c_out_g):
                for oh in range(out_h):
                    for ow in range(out_w):
                        acc = 0.0
                        for ic in range(c_in_g):
                            for i in range(kh):
                                for j in range(kw):
                                    acc += (
                                        x[b, g * c_in_g + ic, oh * sh + i, ow * sw + j]
                                        * w[g * c_out_g + oc, ic, i, j]
                                    )
                        out[b, g * c_out_g + oc, oh, ow] = acc
    return out


class TestConv2d:
    @pytest.mark.parametrize("padding", [Padding.SAME, Padding.VALID])
    @pytest.mark.parametrize("stride", [(1, 1), (2, 2)])
    def test_matches_reference(self, padding, stride):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 4, 8, 8))
        w = rng.standard_normal((6, 4, 3, 3))
        ours = conv2d(x, w, stride, padding, Activation.NONE)
        ref = reference_conv(x, w, stride, padding)
        assert ours.shape == ref.shape
        assert np.allclose(ours, ref, atol=1e-10)

    def test_grouped_matches_reference(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 6, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))  # 2 groups
        ours = conv2d(x, w, (1, 1), Padding.SAME, Activation.NONE)
        ref = reference_conv(x, w, (1, 1), Padding.SAME)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_depthwise(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 4, 5, 5))
        w = rng.standard_normal((4, 1, 3, 3))
        ours = conv2d(x, w, (1, 1), Padding.SAME, Activation.NONE)
        ref = reference_conv(x, w, (1, 1), Padding.SAME)
        assert np.allclose(ours, ref, atol=1e-10)

    def test_activation_applied(self):
        x = -np.ones((1, 1, 3, 3))
        w = np.ones((1, 1, 1, 1))
        out = conv2d(x, w, (1, 1), Padding.SAME, Activation.RELU)
        assert np.all(out == 0.0)

    def test_shape_matches_inference(self):
        x = np.zeros((1, 8, 13, 13))
        w = np.zeros((16, 8, 3, 3))
        out = conv2d(x, w, (2, 2), Padding.SAME, Activation.NONE)
        inferred = infer_symbol(
            "conv",
            [TensorData.integer(2), TensorData.integer(2), TensorData.integer(0), TensorData.integer(0),
             TensorData.tensor((1, 8, 13, 13)), TensorData.tensor((16, 8, 3, 3))],
        )
        assert out.shape == inferred.shape


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool2d(x, (2, 2), (2, 2), Padding.VALID, Activation.NONE, "max")
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.ones((1, 2, 4, 4))
        out = pool2d(x, (2, 2), (2, 2), Padding.VALID, Activation.NONE, "avg")
        assert np.allclose(out, 1.0)

    def test_same_padding_max_ignores_pad(self):
        x = np.full((1, 1, 3, 3), -2.0)
        out = pool2d(x, (3, 3), (1, 1), Padding.SAME, Activation.NONE, "max")
        # -inf padding never wins the max.
        assert np.all(out == -2.0)


class TestExecuteSymbol:
    def test_ewadd_ewmul(self):
        a, b = np.ones((2, 2)), np.full((2, 2), 3.0)
        assert np.allclose(execute_symbol("ewadd", [a, b]), 4.0)
        assert np.allclose(execute_symbol("ewmul", [a, b]), 3.0)

    def test_matmul_with_activation(self):
        a = np.array([[1.0, -1.0]])
        b = np.array([[1.0], [2.0]])
        out = execute_symbol("matmul", [1, a, b])  # relu
        assert np.allclose(out, [[0.0]])

    def test_transpose(self):
        x = np.arange(6.0).reshape(2, 3)
        out = execute_symbol("transpose", [x, "1 0"])
        assert out.shape == (3, 2)

    def test_concat_and_split_roundtrip(self):
        x = np.ones((2, 3))
        y = np.zeros((2, 5))
        cat = execute_symbol("concat2", [1, x, y])
        cat_data = infer_symbol(
            "concat2", [TensorData.integer(1), TensorData.tensor((2, 3)), TensorData.tensor((2, 5))]
        )
        parts = execute_symbol("split", [1, cat], [TensorData.integer(1), cat_data])
        assert np.allclose(execute_symbol("split0", [parts]), x)
        assert np.allclose(execute_symbol("split1", [parts]), y)

    def test_split_without_metadata_raises(self):
        with pytest.raises(ShapeError):
            execute_symbol("split", [1, np.ones((2, 4))])

    def test_enlarge_pads_center(self):
        small = np.ones((1, 1, 1, 1))
        ref = np.zeros((1, 1, 3, 3))
        out = execute_symbol("enlarge", [small, ref])
        assert out.shape == (1, 1, 3, 3)
        assert out[0, 0, 1, 1] == 1.0
        assert out.sum() == 1.0

    def test_merge_block_diagonal(self):
        w = np.ones((4, 2, 1, 1))
        merged = execute_symbol("merge", [w, 2])
        assert merged.shape == (4, 4, 1, 1)
        # First two output channels read only the first two input channels.
        assert merged[0, 2:, 0, 0].sum() == 0.0
        assert merged[3, :2, 0, 0].sum() == 0.0

    def test_reshape(self):
        x = np.arange(12.0).reshape(3, 4)
        out = execute_symbol("reshape", [x, "2 6"])
        assert out.shape == (2, 6)

    def test_literals(self):
        assert execute_symbol("7", []) == 7
        assert execute_symbol("0 2 1", []) == "0 2 1"

    def test_input_requires_binding(self):
        with pytest.raises(ShapeError):
            execute_symbol("input", ["x@2 2"])

    def test_enlarge_identity_semantics_under_same_padding(self):
        """conv(x, w_1x1) == conv(x, enlarge(w_1x1, w_3x3)) with SAME padding, stride 1."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 6, 6))
        w1 = rng.standard_normal((5, 4, 1, 1))
        ref3 = np.zeros((7, 4, 3, 3))
        enlarged = execute_symbol("enlarge", [w1, ref3])
        out_small = conv2d(x, w1, (1, 1), Padding.SAME, Activation.NONE)
        out_large = conv2d(x, enlarged, (1, 1), Padding.SAME, Activation.NONE)
        assert np.allclose(out_small, out_large, atol=1e-10)
