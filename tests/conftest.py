"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.costs import AnalyticCostModel, TableCostModel
from repro.ir.graph import GraphBuilder


@pytest.fixture
def analytic_cost_model():
    return AnalyticCostModel()


@pytest.fixture
def unit_cost_model():
    """Every compute node costs 1; parameter/identifier nodes cost 0."""
    return TableCostModel({}, default=1.0)


@pytest.fixture
def shared_matmul_graph():
    """Two matmuls sharing their left operand, combined by a noop (two outputs)."""
    b = GraphBuilder("shared-matmul")
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, 32))
    w2 = b.weight("w2", (64, 48))
    m1 = b.matmul(x, w1)
    m2 = b.matmul(x, w2)
    return b.finish(outputs=[m1, m2])


@pytest.fixture
def nasrnn_like_graph():
    """A small gate structure with matmul pairs feeding element-wise combinations."""
    b = GraphBuilder("nasrnn-like")
    x = b.input("x", (1, 32))
    h = b.input("h", (1, 16))
    wx1 = b.weight("wx1", (32, 64))
    wh1 = b.weight("wh1", (16, 64))
    wx2 = b.weight("wx2", (32, 64))
    wh2 = b.weight("wh2", (16, 64))
    g1 = b.tanh(b.ewadd(b.matmul(x, wx1), b.matmul(h, wh1)))
    g2 = b.sigmoid(b.ewadd(b.matmul(x, wx2), b.matmul(h, wh2)))
    return b.finish(outputs=[b.ewmul(g1, g2)])
