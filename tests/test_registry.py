"""Component-registry tests: the one source of truth for pluggable strategies.

Covers the :class:`~repro.core.registry.Registry` mechanics, the built-in
entries, the derivation of config validation and CLI choices from the
registries, and end-to-end registration of third-party components without
editing the driver.
"""

from __future__ import annotations

import pytest

from repro import TensatConfig, optimize
from repro.cli import build_parser
from repro.core import config as config_module
from repro.core.registry import (
    CONDITION_CACHES,
    CYCLE_FILTERS,
    EXTRACTORS,
    ILP_BACKENDS,
    MATCHERS,
    MULTIPATTERN_JOINS,
    Registry,
    SCHEDULERS,
    SEARCH_MODES,
    SHAPE_ANALYSES,
)
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.scheduler import SimpleScheduler

FAST = TensatConfig.fast()


class TestRegistryMechanics:
    def test_register_get_create_names(self):
        reg = Registry("widget")
        reg.register("a", lambda **kw: ("a", kw))
        reg.register("b", lambda **kw: ("b", kw))
        assert reg.names() == ("a", "b")
        assert "a" in reg and "c" not in reg
        assert len(reg) == 2 and list(reg) == ["a", "b"]
        assert reg.create("b", x=1) == ("b", {"x": 1})

    def test_decorator_registration(self):
        reg = Registry("widget")

        @reg.register("decorated")
        def factory():
            return 42

        assert reg.get("decorated") is factory

    def test_unknown_name_error_lists_available(self):
        reg = Registry("widget")
        reg.register("only", object())
        with pytest.raises(ValueError, match=r"unknown widget 'nope'; available: only"):
            reg.get("nope")
        with pytest.raises(ValueError, match="available"):
            reg.check("nope")
        with pytest.raises(ValueError):
            reg.unregister("nope")

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("taken", object())
        with pytest.raises(ValueError, match="already registered"):
            reg.register("taken", object())

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("gone", object())
        reg.unregister("gone")
        assert "gone" not in reg
        reg.register("gone", object())  # name is reusable afterwards

    def test_create_rejects_non_callable_entry(self):
        reg = Registry("mode")
        reg.register("descriptor", "just a description")
        with pytest.raises(TypeError):
            reg.create("descriptor")


class TestBuiltinEntries:
    def test_builtin_names(self):
        assert SCHEDULERS.names() == ("simple", "backoff")
        assert EXTRACTORS.names() == ("ilp", "greedy", "portfolio")
        assert CYCLE_FILTERS.names() == ("efficient", "vanilla", "none")
        assert MULTIPATTERN_JOINS.names() == ("hash", "product")
        assert CONDITION_CACHES.names() == ("auto", "memo", "off")
        assert MATCHERS.names() == ("vm", "naive")
        assert SEARCH_MODES.names() == ("trie", "per-rule")
        assert SHAPE_ANALYSES.names() == ("on", "off")
        assert ILP_BACKENDS.names() == ("scipy", "bnb")

    def test_config_choice_tuples_are_registry_snapshots(self):
        assert config_module.MATCHER_CHOICES == MATCHERS.names()
        assert config_module.SCHEDULER_CHOICES == SCHEDULERS.names()
        assert config_module.SEARCH_MODE_CHOICES == SEARCH_MODES.names()
        assert config_module.MULTIPATTERN_JOIN_CHOICES == MULTIPATTERN_JOINS.names()
        assert config_module.CONDITION_CACHE_CHOICES == CONDITION_CACHES.names()
        assert config_module.CYCLE_FILTER_CHOICES == CYCLE_FILTERS.names()
        assert config_module.EXTRACTION_CHOICES == EXTRACTORS.names()
        assert config_module.SHAPE_ANALYSIS_CHOICES == SHAPE_ANALYSES.names()

    def test_config_validation_error_lists_choices(self):
        with pytest.raises(ValueError, match="available"):
            TensatConfig(matcher="regex")
        with pytest.raises(ValueError, match="available"):
            TensatConfig(extraction="random")
        with pytest.raises(ValueError, match="available"):
            TensatConfig(ilp_backend="gurobi")

    def test_cli_choices_derive_from_registries(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and "optimize" in (a.choices or {})
        )
        actions = {a.dest: a for a in subparsers.choices["optimize"]._actions}
        assert tuple(actions["matcher"].choices) == MATCHERS.names()
        assert tuple(actions["search_mode"].choices) == SEARCH_MODES.names()
        assert tuple(actions["scheduler"].choices) == SCHEDULERS.names()
        assert tuple(actions["multipattern_join"].choices) == MULTIPATTERN_JOINS.names()
        assert tuple(actions["condition_cache"].choices) == CONDITION_CACHES.names()
        assert tuple(actions["shape_analysis"].choices) == SHAPE_ANALYSES.names()
        assert tuple(actions["extraction"].choices) == EXTRACTORS.names()
        assert tuple(actions["cycle_filter"].choices) == CYCLE_FILTERS.names()


class TestThirdPartyRegistration:
    def test_custom_scheduler_plugs_in_via_config(self, shared_matmul_graph):
        class EagerScheduler(SimpleScheduler):
            name = "test-eager"

        SCHEDULERS.register("test-eager", lambda match_limit, ban_length: EagerScheduler())
        try:
            config = FAST.with_overrides(scheduler="test-eager", extraction="greedy")
            result = optimize(shared_matmul_graph, config=config)
            assert result.optimized_cost <= result.original_cost + 1e-9
            # An identically-behaving scheduler must not change the trajectory.
            baseline = optimize(
                shared_matmul_graph, config=FAST.with_overrides(extraction="greedy")
            )
            assert result.stats.num_enodes == baseline.stats.num_enodes
            assert result.optimized_cost == baseline.optimized_cost
        finally:
            SCHEDULERS.unregister("test-eager")
        with pytest.raises(ValueError):
            TensatConfig(scheduler="test-eager")

    def test_custom_extractor_plugs_in_via_config(self, shared_matmul_graph):
        created = []

        def make_test_extractor(node_cost, config, filter_list):
            extractor = GreedyExtractor(node_cost, filter_list=filter_list)
            created.append(extractor)
            return extractor

        EXTRACTORS.register("test-greedy", make_test_extractor)
        try:
            config = FAST.with_overrides(extraction="test-greedy")
            result = optimize(shared_matmul_graph, config=config)
            assert created, "registered factory was never used"
            baseline = optimize(shared_matmul_graph, config=FAST.with_overrides(extraction="greedy"))
            assert result.optimized_cost == baseline.optimized_cost
        finally:
            EXTRACTORS.unregister("test-greedy")
