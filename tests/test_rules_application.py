"""Tests that key rules fire on e-graphs and enable the expected optimizations."""

import pytest

from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.runner import Runner, RunnerLimits, make_cycle_filter
from repro.ir.convert import egraph_from_graph, recexpr_to_graph
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation
from repro.rules import default_ruleset


def optimize_with_rules(graph, rules, k_multi=1, node_limit=4000, iter_limit=6):
    cm = AnalyticCostModel()
    eg, root = egraph_from_graph(graph)
    cycle_filter = make_cycle_filter("efficient")
    Runner(
        eg,
        rewrites=rules.rewrites,
        multi_rewrites=rules.multi_rewrites,
        limits=RunnerLimits(node_limit=node_limit, iter_limit=iter_limit, k_multi=k_multi),
        cycle_filter=cycle_filter,
    ).run()
    result = ILPExtractor(
        cm.extraction_cost_function(), filter_list=cycle_filter.filter_list, time_limit=60
    ).extract(eg, root)
    optimized = recexpr_to_graph(result.expr, name=graph.name + "-opt")
    return optimized, cm


class TestMatmulMerge:
    def test_shared_lhs_matmuls_get_merged(self):
        b = GraphBuilder("pair")
        x = b.input("x", (8, 64))
        w1 = b.weight("w1", (64, 128))
        w2 = b.weight("w2", (64, 96))
        g = b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])

        rules = default_ruleset()
        optimized, cm = optimize_with_rules(g, rules)
        assert cm.graph_cost(optimized) < cm.graph_cost(g)
        # Exactly one matmul remains, fed by a concat of the weights.
        assert optimized.op_histogram().get("matmul") == 1
        assert outputs_allclose(execute_graph(g), execute_graph(optimized))

    def test_fig11_add_of_matmuls(self):
        b = GraphBuilder("fig11")
        x = b.input("x", (4, 32))
        y = b.input("y", (4, 48))
        w1 = b.weight("w1", (32, 64))
        w2 = b.weight("w2", (48, 64))
        g = b.finish(outputs=[b.ewadd(b.matmul(x, w1), b.matmul(y, w2))])

        optimized, cm = optimize_with_rules(g, default_ruleset())
        assert cm.graph_cost(optimized) < cm.graph_cost(g)
        hist = optimized.op_histogram()
        assert hist.get("matmul") == 1
        assert "ewadd" not in hist
        assert outputs_allclose(execute_graph(g), execute_graph(optimized))


class TestConvMerge:
    def test_shared_input_convs_get_merged(self):
        b = GraphBuilder("convpair")
        x = b.input("x", (1, 16, 14, 14))
        w1 = b.weight("w1", (32, 16, 3, 3))
        w2 = b.weight("w2", (48, 16, 3, 3))
        c1 = b.conv(x, w1, activation=Activation.RELU)
        c2 = b.conv(x, w2, activation=Activation.RELU)
        g = b.finish(outputs=[c1, c2])

        optimized, cm = optimize_with_rules(g, default_ruleset())
        assert cm.graph_cost(optimized) < cm.graph_cost(g)
        assert optimized.op_histogram().get("conv") == 1
        assert outputs_allclose(execute_graph(g), execute_graph(optimized))

    def test_enlarge_merge_for_mixed_kernel_sizes(self):
        b = GraphBuilder("fire")
        x = b.input("x", (1, 8, 10, 10))
        w1 = b.weight("w1", (16, 8, 1, 1))
        w3 = b.weight("w3", (16, 8, 3, 3))
        e1 = b.conv(x, w1, activation=Activation.RELU)
        e3 = b.conv(x, w3, activation=Activation.RELU)
        g = b.finish(outputs=[b.concat(1, e1, e3)])

        optimized, cm = optimize_with_rules(g, default_ruleset())
        assert cm.graph_cost(optimized) < cm.graph_cost(g)
        assert optimized.op_histogram().get("conv") == 1
        assert outputs_allclose(execute_graph(g), execute_graph(optimized))


class TestFusion:
    def test_relu_fuses_into_matmul(self):
        b = GraphBuilder("fuse")
        x = b.input("x", (16, 64))
        w = b.weight("w", (64, 64))
        g = b.finish(outputs=[b.relu(b.matmul(x, w))])

        optimized, cm = optimize_with_rules(g, default_ruleset(include_multi=False))
        hist = optimized.op_histogram()
        assert "relu" not in hist
        assert cm.graph_cost(optimized) < cm.graph_cost(g)
        assert outputs_allclose(execute_graph(g), execute_graph(optimized))


class TestNegativeControl:
    def test_single_matmul_is_left_alone(self):
        b = GraphBuilder("lone")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        optimized, cm = optimize_with_rules(g, default_ruleset())
        assert cm.graph_cost(optimized) == pytest.approx(cm.graph_cost(g))
