"""Tests for graph serialization (S-expression text and JSON)."""

import pytest

from repro.backend import execute_graph, outputs_allclose
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation, Padding
from repro.ir.serialize import (
    SerializeError,
    graph_from_doc,
    graph_from_json,
    graph_from_sexpr_text,
    graph_to_doc,
    graph_to_json,
    graph_to_sexpr_text,
    load_graph,
    save_graph,
)
from repro.ir.validate import validate_graph


def sample_graph():
    b = GraphBuilder("sample")
    x = b.input("x", (1, 8, 10, 10))
    w1 = b.weight("w1", (16, 8, 3, 3))
    w2 = b.weight("w2", (16, 8, 1, 1))
    c1 = b.conv(x, w1, activation=Activation.RELU)
    c2 = b.conv(x, w2, activation=Activation.RELU)
    cat = b.concat(1, c1, c2)
    p = b.poolmax(cat, (2, 2), (2, 2), Padding.VALID)
    return b.finish(outputs=[p])


class TestSExprSerialization:
    def test_roundtrip_preserves_semantics(self):
        g = sample_graph()
        text = graph_to_sexpr_text(g)
        g2 = graph_from_sexpr_text(text, name="sample")
        validate_graph(g2)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_roundtrip_preserves_structure(self):
        g = sample_graph()
        g2 = graph_from_sexpr_text(graph_to_sexpr_text(g))
        assert g2.op_histogram() == g.op_histogram()

    def test_text_is_stable(self):
        g = sample_graph()
        assert graph_to_sexpr_text(g) == graph_to_sexpr_text(sample_graph())


class TestJsonSerialization:
    def test_roundtrip_preserves_semantics(self):
        g = sample_graph()
        g2 = graph_from_json(graph_to_json(g))
        validate_graph(g2)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_outputs_preserved(self):
        b = GraphBuilder("two-out")
        x = b.input("x", (4, 8))
        w1 = b.weight("w1", (8, 3))
        w2 = b.weight("w2", (8, 5))
        g = b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])
        g2 = graph_from_json(graph_to_json(g))
        assert [g2.nodes[o].shape for o in g2.outputs] == [(4, 3), (4, 5)]

    def test_name_preserved(self):
        g2 = graph_from_json(graph_to_json(sample_graph()))
        assert g2.name == "sample"


class TestMalformedDocuments:
    """The service's input boundary: typed SerializeError naming the field."""

    def test_invalid_json_text(self):
        with pytest.raises(SerializeError, match="invalid JSON"):
            graph_from_json("{not json")

    def test_document_must_be_object(self):
        with pytest.raises(SerializeError, match="graph document"):
            graph_from_doc([1, 2, 3])

    def test_missing_nodes_field(self):
        with pytest.raises(SerializeError, match="nodes.*missing"):
            graph_from_doc({"outputs": [0]})

    def test_nodes_must_be_list(self):
        with pytest.raises(SerializeError, match="nodes: expected a list"):
            graph_from_doc({"nodes": {"op": "input"}, "outputs": [0]})

    def test_node_entry_must_be_object(self):
        with pytest.raises(SerializeError, match=r"nodes\[0\]: expected an object"):
            graph_from_doc({"nodes": ["input"], "outputs": [0]})

    def test_missing_op_named(self):
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.op: field is missing"):
            graph_from_doc({"nodes": [{"inputs": []}], "outputs": [0]})

    def test_unknown_op_named(self):
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.op: unknown operator 'warp'"):
            graph_from_doc({"nodes": [{"op": "warp", "inputs": []}], "outputs": [0]})

    def test_inputs_must_be_list(self):
        doc = {"nodes": [{"op": "num", "value": 1, "inputs": 0}], "outputs": [0]}
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.inputs: expected a list"):
            graph_from_doc(doc)

    def test_forward_input_reference_named(self):
        doc = {
            "nodes": [{"op": "relu", "inputs": [1]}, {"op": "num", "value": 1, "inputs": []}],
            "outputs": [0],
        }
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.inputs\[0\].*does not precede"):
            graph_from_doc(doc)

    def test_non_integer_input_reference_named(self):
        doc = {"nodes": [{"op": "relu", "inputs": ["zero"]}], "outputs": [0]}
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.inputs\[0\]"):
            graph_from_doc(doc)

    def test_bad_literal_value_named(self):
        doc = {"nodes": [{"op": "num", "value": "not-a-number", "inputs": []}], "outputs": [0]}
        with pytest.raises(SerializeError, match=r"nodes\[0\] \(num\)"):
            graph_from_doc(doc)

    def test_str_node_needs_string_value(self):
        doc = {"nodes": [{"op": "str", "value": 7, "inputs": []}], "outputs": [0]}
        with pytest.raises(SerializeError, match=r"nodes\[0\]\.value"):
            graph_from_doc(doc)

    def test_shape_error_wrapped_with_node_index(self):
        # matmul of incompatible shapes: inference must surface as
        # SerializeError naming the node, not a raw ShapeError/KeyError.
        doc = {
            "nodes": [
                {"op": "str", "value": "x@4 8", "inputs": []},
                {"op": "input", "inputs": [0]},
                {"op": "str", "value": "w@9 5", "inputs": []},
                {"op": "weight", "inputs": [2]},
                {"op": "num", "value": 0, "inputs": []},
                {"op": "matmul", "inputs": [4, 1, 3]},
            ],
            "outputs": [5],
        }
        with pytest.raises(SerializeError, match=r"nodes\[5\] \(matmul\): shape inference"):
            graph_from_doc(doc)

    def test_missing_outputs_named(self):
        with pytest.raises(SerializeError, match="outputs.*missing"):
            graph_from_doc({"nodes": []})

    def test_output_out_of_range_named(self):
        doc = {"nodes": [{"op": "num", "value": 3, "inputs": []}], "outputs": [7]}
        with pytest.raises(SerializeError, match=r"outputs\[0\]: 7 is not a node"):
            graph_from_doc(doc)

    def test_doc_roundtrip_matches_json_roundtrip(self):
        g = sample_graph()
        assert graph_to_doc(graph_from_doc(graph_to_doc(g))) == graph_to_doc(g)


class TestFileIO:
    def test_save_and_load_json(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "graph.json")
        save_graph(g, path)
        g2 = load_graph(path)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_save_and_load_sexpr(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "graph.sexpr")
        save_graph(g, path)
        g2 = load_graph(path, name="sample")
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_graph(sample_graph(), str(tmp_path / "graph.bin"), fmt="protobuf")
