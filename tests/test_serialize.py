"""Tests for graph serialization (S-expression text and JSON)."""

import pytest

from repro.backend import execute_graph, outputs_allclose
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation, Padding
from repro.ir.serialize import (
    graph_from_json,
    graph_from_sexpr_text,
    graph_to_json,
    graph_to_sexpr_text,
    load_graph,
    save_graph,
)
from repro.ir.validate import validate_graph


def sample_graph():
    b = GraphBuilder("sample")
    x = b.input("x", (1, 8, 10, 10))
    w1 = b.weight("w1", (16, 8, 3, 3))
    w2 = b.weight("w2", (16, 8, 1, 1))
    c1 = b.conv(x, w1, activation=Activation.RELU)
    c2 = b.conv(x, w2, activation=Activation.RELU)
    cat = b.concat(1, c1, c2)
    p = b.poolmax(cat, (2, 2), (2, 2), Padding.VALID)
    return b.finish(outputs=[p])


class TestSExprSerialization:
    def test_roundtrip_preserves_semantics(self):
        g = sample_graph()
        text = graph_to_sexpr_text(g)
        g2 = graph_from_sexpr_text(text, name="sample")
        validate_graph(g2)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_roundtrip_preserves_structure(self):
        g = sample_graph()
        g2 = graph_from_sexpr_text(graph_to_sexpr_text(g))
        assert g2.op_histogram() == g.op_histogram()

    def test_text_is_stable(self):
        g = sample_graph()
        assert graph_to_sexpr_text(g) == graph_to_sexpr_text(sample_graph())


class TestJsonSerialization:
    def test_roundtrip_preserves_semantics(self):
        g = sample_graph()
        g2 = graph_from_json(graph_to_json(g))
        validate_graph(g2)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_outputs_preserved(self):
        b = GraphBuilder("two-out")
        x = b.input("x", (4, 8))
        w1 = b.weight("w1", (8, 3))
        w2 = b.weight("w2", (8, 5))
        g = b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])
        g2 = graph_from_json(graph_to_json(g))
        assert [g2.nodes[o].shape for o in g2.outputs] == [(4, 3), (4, 5)]

    def test_name_preserved(self):
        g2 = graph_from_json(graph_to_json(sample_graph()))
        assert g2.name == "sample"


class TestFileIO:
    def test_save_and_load_json(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "graph.json")
        save_graph(g, path)
        g2 = load_graph(path)
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_save_and_load_sexpr(self, tmp_path):
        g = sample_graph()
        path = str(tmp_path / "graph.sexpr")
        save_graph(g, path)
        g2 = load_graph(path, name="sample")
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_graph(sample_graph(), str(tmp_path / "graph.bin"), fmt="protobuf")
