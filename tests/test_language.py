"""Tests for ENode and RecExpr."""

import pytest

from repro.egraph.language import ENode, RecExpr


class TestENode:
    def test_leaf(self):
        node = ENode("x")
        assert node.is_leaf()
        assert node.arity == 0

    def test_children(self):
        node = ENode("ewadd", (0, 1))
        assert not node.is_leaf()
        assert node.arity == 2

    def test_hashable_and_equal(self):
        assert ENode("f", (1, 2)) == ENode("f", (1, 2))
        assert hash(ENode("f", (1, 2))) == hash(ENode("f", (1, 2)))
        assert ENode("f", (1, 2)) != ENode("f", (2, 1))

    def test_map_children(self):
        node = ENode("f", (1, 2))
        mapped = node.map_children(lambda c: c + 10)
        assert mapped == ENode("f", (11, 12))

    def test_map_children_leaf_is_identity(self):
        leaf = ENode("x")
        assert leaf.map_children(lambda c: c + 1) is leaf

    def test_matches_signature(self):
        node = ENode("f", (1, 2))
        assert node.matches_signature("f", 2)
        assert not node.matches_signature("f", 1)
        assert not node.matches_signature("g", 2)


class TestRecExpr:
    def test_parse_and_str_roundtrip(self):
        text = "(relu (matmul 0 x w))"
        expr = RecExpr.parse(text)
        assert str(expr) == text

    def test_root_is_last(self):
        expr = RecExpr.parse("(f (g a) b)")
        assert expr.nodes[expr.root].op == "f"

    def test_children_precede_parents(self):
        expr = RecExpr.parse("(f (g a) (h b))")
        for i, node in enumerate(expr.nodes):
            assert all(c < i for c in node.children)

    def test_hash_consing_of_shared_subterms(self):
        # (f (g a) (g a)): the (g a) subterm should appear exactly once.
        expr = RecExpr.parse("(f (g a) (g a))")
        g_nodes = [n for n in expr.nodes if n.op == "g"]
        assert len(g_nodes) == 1

    def test_add_rejects_forward_reference(self):
        expr = RecExpr()
        with pytest.raises(ValueError):
            expr.add(ENode("f", (0,)))

    def test_empty_has_no_root(self):
        with pytest.raises(ValueError):
            RecExpr().root

    def test_subterm_size(self):
        expr = RecExpr.parse("(f (g a) (g a))")
        assert expr.subterm_size() == 3  # f, g, a

    def test_ops(self):
        expr = RecExpr.parse("(f a b)")
        assert set(expr.ops()) == {"f", "a", "b"}

    def test_map_values_fold(self):
        expr = RecExpr.parse("(+ (+ 1 2) 3)")

        def fold(node, child_values):
            if not node.children:
                return int(node.op)
            return sum(child_values)

        assert expr.map_values(fold) == 6

    def test_to_sexpr_subterm(self):
        expr = RecExpr.parse("(f (g a) b)")
        g_index = next(i for i, n in enumerate(expr.nodes) if n.op == "g")
        assert expr.to_sexpr(g_index) == ["g", "a"]

    def test_quoted_atoms_roundtrip(self):
        text = '(input "x@8 64")'
        assert str(RecExpr.parse(text)) == text
