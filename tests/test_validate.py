"""Tests for graph validation."""

import pytest

from repro.ir.graph import GraphBuilder, Node, TensorGraph
from repro.ir.ops import OpKind
from repro.ir.tensor import TensorData
from repro.ir.validate import ValidationError, check_same_interface, reachable_from_outputs, validate_graph


def good_graph():
    b = GraphBuilder("good")
    x = b.input("x", (4, 8))
    w = b.weight("w", (8, 16))
    return b.finish(outputs=[b.relu(b.matmul(x, w))])


class TestValidateGraph:
    def test_valid_graph_passes(self):
        validate_graph(good_graph())

    def test_corrupted_shape_detected(self):
        g = good_graph()
        bad_nodes = list(g.nodes)
        last = bad_nodes[-1]
        bad_nodes[-1] = Node(
            id=last.id, op=last.op, inputs=last.inputs, value=last.value, data=TensorData.tensor((9, 9))
        )
        bad = TensorGraph(bad_nodes, g.outputs, name="bad")
        with pytest.raises(ValidationError):
            validate_graph(bad)

    def test_topology_enforced_at_construction(self):
        node = Node(id=0, op=OpKind.RELU, inputs=(1,), data=TensorData.tensor((2,)))
        with pytest.raises(ValueError):
            TensorGraph([node], [0])

    def test_node_id_mismatch_rejected(self):
        node = Node(id=5, op=OpKind.NUM, inputs=(), value=1, data=TensorData.integer(1))
        with pytest.raises(ValueError):
            TensorGraph([node], [0])

    def test_output_out_of_range_rejected(self):
        node = Node(id=0, op=OpKind.NUM, inputs=(), value=1, data=TensorData.integer(1))
        with pytest.raises(ValueError):
            TensorGraph([node], [3])


class TestReachability:
    def test_reachable_from_outputs(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        w = b.weight("w", (8, 16))
        live = b.matmul(x, w)
        dead = b.relu(live)
        g = b.finish(outputs=[live])
        reachable = reachable_from_outputs(g)
        assert live in reachable
        assert dead not in reachable


class TestInterfaceCheck:
    def test_same_graph_passes(self):
        g = good_graph()
        check_same_interface(g, g)

    def test_unknown_tensor_rejected(self):
        original = good_graph()
        b = GraphBuilder("other")
        x = b.input("other_input", (4, 8))
        w = b.weight("w", (8, 16))
        optimized = b.finish(outputs=[b.matmul(x, w)])
        with pytest.raises(ValidationError):
            check_same_interface(original, optimized)

    def test_shape_change_rejected(self):
        original = good_graph()
        b = GraphBuilder("other")
        x = b.input("x", (4, 9))
        w = b.weight("w", (9, 16))
        optimized = b.finish(outputs=[b.matmul(x, w)])
        with pytest.raises(ValidationError):
            check_same_interface(original, optimized)

    def test_output_arity_change_rejected(self):
        original = good_graph()
        b = GraphBuilder("other")
        x = b.input("x", (4, 8))
        w = b.weight("w", (8, 16))
        m = b.matmul(x, w)
        optimized = b.finish(outputs=[m, b.relu(m)])
        with pytest.raises(ValidationError):
            check_same_interface(original, optimized)

    def test_subset_of_weights_is_allowed(self):
        b = GraphBuilder("orig")
        x = b.input("x", (4, 8))
        w1 = b.weight("w1", (8, 16))
        w2 = b.weight("w2", (8, 16))
        original = b.finish(outputs=[b.ewadd(b.matmul(x, w1), b.matmul(x, w2))])

        b = GraphBuilder("opt")
        x = b.input("x", (4, 8))
        w1 = b.weight("w1", (8, 16))
        optimized = b.finish(outputs=[b.matmul(x, w1)])
        # Not semantically equal, but interface-wise this is fine (fewer weights used).
        check_same_interface(original, optimized)
