"""Tests for the operator-spec registry (repro.ir.opspec).

The registry replaced three per-symbol if/elif chains (shape inference, FLOP
accounting, byte accounting).  The old chains survive as *executable specs*
(``infer_symbol_spec`` / ``op_flops_spec`` / ``op_bytes_spec``); the parity
tests here pin the registry dispatch to them verdict by verdict over a corpus
drawn from every built-in model plus handcrafted error cases.
"""

import pytest

from repro.costs.flops import op_bytes, op_bytes_spec, op_flops, op_flops_spec
from repro.ir.graph import GraphBuilder
from repro.ir.ops import OpKind
from repro.ir.opspec import OPS, OpSpec, UnknownOperatorError, register_concat
from repro.ir.shapes import infer_symbol, infer_symbol_spec
from repro.ir.tensor import ShapeError, TensorData
from repro.models import MODEL_NAMES, build_model

# --------------------------------------------------------------------- #
# Corpus: every (symbol, children) pair occurring in the built-in models,
# plus handcrafted shape-error cases.  The model sweep guarantees every
# Table-2 operator family the models use is covered with *valid* operands;
# the error cases pin the failure verdicts.
# --------------------------------------------------------------------- #


def model_corpus():
    """(symbol, children data, output data) for every node of every model."""
    corpus = []
    seen = set()
    for name in MODEL_NAMES:
        graph = build_model(name, "tiny")
        for node in graph.nodes:
            children = tuple(graph.nodes[c].data for c in node.inputs)
            key = (node.symbol, tuple(repr(c) for c in children))
            if key in seen:
                continue
            seen.add(key)
            corpus.append((node.symbol, children, node.data))
    return corpus


ERROR_CASES = [
    # (symbol, children) where the old chain raises ShapeError
    ("ewadd", (TensorData.tensor((4, 8)), TensorData.tensor((4, 9)))),
    ("ewmul", (TensorData.tensor((4, 8)), TensorData.tensor((5, 8)))),
    ("matmul", (TensorData.integer(0), TensorData.tensor((4, 8)), TensorData.tensor((9, 16)))),
    ("concat2", (TensorData.integer(0), TensorData.tensor((4, 8)), TensorData.tensor((4, 9)))),
    ("relu", (TensorData.integer(3),)),
    ("transpose", (TensorData.tensor((4, 8)), TensorData.string("0 0"))),
]


class TestRegistryMatchesExecutableSpec:
    """Verdict-by-verdict parity: registry dispatch == the historical chains."""

    @pytest.mark.parametrize("symbol,children,_out", model_corpus(),
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_infer_parity_on_model_corpus(self, symbol, children, _out):
        assert infer_symbol(symbol, list(children)) == infer_symbol_spec(symbol, list(children))

    @pytest.mark.parametrize("symbol,children,output", model_corpus(),
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_cost_parity_on_model_corpus(self, symbol, children, output):
        assert op_flops(symbol, list(children), output) == op_flops_spec(symbol, list(children), output)
        assert op_bytes(symbol, list(children), output) == op_bytes_spec(symbol, list(children), output)

    @pytest.mark.parametrize("symbol,children", ERROR_CASES)
    def test_error_verdict_parity(self, symbol, children):
        with pytest.raises(ShapeError):
            infer_symbol_spec(symbol, list(children))
        with pytest.raises(ShapeError):
            infer_symbol(symbol, list(children))

    def test_literal_symbols_infer_identically(self):
        for symbol in ("0", "42", "-3", "x@8 64", "perm 1 0"):
            assert infer_symbol(symbol, []) == infer_symbol_spec(symbol, [])

    def test_inference_result_matches_recorded_node_data(self):
        # Registry inference reproduces the data each model node carries
        # (up to split/from_weights annotations the builder adds post-hoc).
        for symbol, children, output in model_corpus():
            if not OPS.for_symbol(symbol):
                continue
            inferred = infer_symbol(symbol, list(children))
            assert inferred.kind == output.kind
            assert inferred.shape == output.shape


class TestRegistryMechanics:
    def test_every_opkind_has_a_spec(self):
        for kind in OpKind:
            assert OPS.spec(kind) is not None

    def test_duplicate_registration_raises(self):
        spec = OPS.spec(OpKind.RELU)
        with pytest.raises(ValueError):
            OPS.register(spec)

    def test_replace_roundtrip(self):
        spec = OPS.spec(OpKind.RELU)
        assert OPS.register(spec, replace=True) is spec
        assert OPS.for_symbol("relu") is spec

    def test_unregister_and_reregister(self):
        spec = OPS.spec(OpKind.ENLARGE)
        OPS.unregister(OpKind.ENLARGE)
        try:
            assert OPS.for_symbol("enlarge") is None
            assert "enlarge" not in OPS.names()
            with pytest.raises(ValueError):
                OPS.unregister(OpKind.ENLARGE)
        finally:
            OPS.register(spec)
        assert OPS.for_symbol("enlarge") is spec

    def test_symbols_roundtrip_through_for_symbol(self):
        for symbol in OPS.symbols():
            spec = OPS.for_symbol(symbol)
            assert spec is not None and symbol in spec.symbols

    def test_spec_is_frozen(self):
        spec = OPS.spec(OpKind.MATMUL)
        with pytest.raises(Exception):
            spec.name = "other"
        assert isinstance(spec, OpSpec)


class TestConcatFamily:
    def test_default_width(self):
        assert OPS.concat_max_inputs == 8
        assert OPS.spec(OpKind.CONCAT).symbols == tuple(f"concat{i}" for i in range(2, 9))

    def test_widening_and_restore(self):
        register_concat(12)
        try:
            assert OPS.concat_max_inputs == 12
            assert "concat11" in OPS.symbols()
            # The widened family shape-infers through the registry.
            parts = [TensorData.tensor((2, 3)) for _ in range(11)]
            out = infer_symbol("concat11", [TensorData.integer(0)] + parts)
            assert out.shape == (22, 3)
        finally:
            register_concat(8)
        assert OPS.concat_max_inputs == 8
        assert OPS.for_symbol("concat11") is None

    def test_op_symbol_validates_width(self):
        with pytest.raises(ValueError):
            OPS.op_symbol(OpKind.CONCAT, num_inputs=1 + OPS.concat_max_inputs + 1)

    def test_widening_changes_config_digest(self):
        from repro.core.config import TensatConfig
        from repro.service.fingerprint import config_digest

        before = config_digest(TensatConfig())
        register_concat(10)
        try:
            widened = config_digest(TensatConfig())
        finally:
            register_concat(8)
        assert config_digest(TensatConfig()) == before
        assert widened != before


class TestStrictSymbolResolution:
    def test_unknown_symbol_raises_in_strict_mode(self):
        with pytest.raises(UnknownOperatorError):
            OPS.resolve_symbol("frobnicate", strict=True)

    def test_unknown_symbol_is_str_in_lenient_mode(self):
        assert OPS.resolve_symbol("frobnicate") == (OpKind.STR, "frobnicate")

    def test_identifier_payloads_stay_str_in_strict_mode(self):
        # `name@dims` identifier payloads and all-integer token strings are
        # genuine string literals, not misspelled operators.
        assert OPS.resolve_symbol("x@8 64", strict=True) == (OpKind.STR, "x@8 64")
        assert OPS.resolve_symbol("1 0", strict=True) == (OpKind.STR, "1 0")

    def test_integers_resolve_to_num(self):
        assert OPS.resolve_symbol("42", strict=True) == (OpKind.NUM, 42)
        assert OPS.resolve_symbol("-7", strict=True) == (OpKind.NUM, -7)

    def test_registered_symbols_resolve(self):
        assert OPS.resolve_symbol("matmul", strict=True) == (OpKind.MATMUL, None)
        assert OPS.resolve_symbol("concat3", strict=True) == (OpKind.CONCAT, None)


class TestHotPathHasNoChain:
    """The acceptance criterion: no per-symbol if/elif dispatch in the
    shapes / flops hot paths -- those modules may keep the chains only as
    the ``*_spec`` executable references."""

    def test_shapes_module_dispatches_through_registry(self):
        from repro.ir import shapes

        # infer_symbol must be the registry front door, not a local chain.
        assert shapes.infer_symbol.__module__ == "repro.ir.opspec"

    def test_flops_module_dispatches_through_registry(self):
        from repro.costs import flops

        assert flops.op_flops.__module__ == "repro.ir.opspec"
        assert flops.op_bytes.__module__ == "repro.ir.opspec"
