"""Tests for the TASO-style backtracking baseline and the sampling baseline."""

import pytest

from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel
from repro.ir.graph import GraphBuilder
from repro.ir.validate import check_same_interface, validate_graph
from repro.rules import default_ruleset
from repro.search import BacktrackingSearch, SamplingSearch


def shared_matmul_graph():
    b = GraphBuilder("pair")
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, 128))
    w2 = b.weight("w2", (64, 96))
    return b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])


def fused_chain_graph():
    b = GraphBuilder("chain")
    x = b.input("x", (16, 64))
    w1 = b.weight("w1", (64, 64))
    w2 = b.weight("w2", (64, 64))
    h = b.relu(b.matmul(x, w1))
    return b.finish(outputs=[b.relu(b.matmul(h, w2))])


class TestBacktrackingSearch:
    def test_finds_merge_on_shared_matmuls(self):
        cm = AnalyticCostModel()
        g = shared_matmul_graph()
        result = BacktrackingSearch(cm, budget=20, time_limit=60).optimize(g)
        assert result.optimized_cost < result.original_cost
        assert result.speedup_percent > 0
        validate_graph(result.optimized)
        check_same_interface(g, result.optimized)
        assert outputs_allclose(execute_graph(g), execute_graph(result.optimized))

    def test_fusion_chain(self):
        cm = AnalyticCostModel()
        g = fused_chain_graph()
        result = BacktrackingSearch(cm, budget=20, time_limit=60).optimize(g)
        assert "relu" not in result.optimized.op_histogram()
        assert outputs_allclose(execute_graph(g), execute_graph(result.optimized))

    def test_budget_limits_iterations(self):
        cm = AnalyticCostModel()
        g = shared_matmul_graph()
        result = BacktrackingSearch(cm, budget=1, time_limit=60).optimize(g)
        assert result.iterations <= 1

    def test_best_time_not_after_total_time(self):
        cm = AnalyticCostModel()
        result = BacktrackingSearch(cm, budget=10, time_limit=60).optimize(shared_matmul_graph())
        assert 0.0 <= result.best_seconds <= result.total_seconds

    def test_trajectory_is_monotone_nonincreasing(self):
        cm = AnalyticCostModel()
        result = BacktrackingSearch(cm, budget=10, time_limit=60).optimize(shared_matmul_graph())
        costs = [c for _, c in result.trajectory]
        assert all(a >= b - 1e-12 for a, b in zip(costs, costs[1:]))

    def test_alpha_below_one_prunes_queue(self):
        cm = AnalyticCostModel()
        g = fused_chain_graph()
        strict = BacktrackingSearch(cm, alpha=0.5, budget=20, time_limit=60).optimize(g)
        relaxed = BacktrackingSearch(cm, alpha=1.05, budget=20, time_limit=60).optimize(g)
        assert strict.graphs_evaluated <= relaxed.graphs_evaluated

    def test_never_worse_than_original(self):
        cm = AnalyticCostModel()
        b = GraphBuilder("single")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        result = BacktrackingSearch(cm, budget=5, time_limit=60).optimize(g)
        assert result.optimized_cost <= result.original_cost + 1e-12


class TestSamplingSearch:
    def test_improves_shared_matmuls(self):
        cm = AnalyticCostModel()
        g = shared_matmul_graph()
        result = SamplingSearch(cm, walks=2, steps_per_walk=5, seed=0).optimize(g)
        assert result.optimized_cost <= result.original_cost
        assert outputs_allclose(execute_graph(g), execute_graph(result.optimized))

    def test_deterministic_given_seed(self):
        cm = AnalyticCostModel()
        g = fused_chain_graph()
        r1 = SamplingSearch(cm, walks=2, steps_per_walk=4, seed=7).optimize(g)
        r2 = SamplingSearch(cm, walks=2, steps_per_walk=4, seed=7).optimize(g)
        assert r1.optimized_cost == pytest.approx(r2.optimized_cost)

    def test_speedup_property(self):
        cm = AnalyticCostModel()
        result = SamplingSearch(cm, walks=1, steps_per_walk=3).optimize(shared_matmul_graph())
        assert result.speedup_percent >= 0
