"""Tests for graph <-> term conversion and the tensor e-class analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph.egraph import EGraph
from repro.egraph.language import RecExpr
from repro.egraph.rewrite import Rewrite
from repro.ir.convert import TensorAnalysis, egraph_from_graph, graph_to_recexpr, recexpr_to_graph
from repro.ir.graph import GraphBuilder
from repro.ir.ops import OpKind
from repro.ir.tensor import DataKind
from repro.ir.validate import validate_graph


def two_output_graph():
    b = GraphBuilder("two")
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, 32))
    w2 = b.weight("w2", (64, 48))
    return b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])


class TestGraphToRecExpr:
    def test_single_output_roundtrip(self):
        b = GraphBuilder("one")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.relu(b.matmul(x, w))])
        expr, mapping = graph_to_recexpr(g)
        g2 = recexpr_to_graph(expr)
        validate_graph(g2)
        assert g2.op_histogram() == g.op_histogram()
        assert len(g2.outputs) == 1

    def test_multi_output_gets_noop_root(self):
        g = two_output_graph()
        expr, _ = graph_to_recexpr(g)
        assert expr.nodes[expr.root].op == "noop"
        g2 = recexpr_to_graph(expr)
        assert len(g2.outputs) == 2
        # noop spine is stripped from outputs
        assert all(g2.nodes[o].op != OpKind.NOOP for o in g2.outputs)

    def test_sharing_preserved(self):
        g = two_output_graph()
        expr, _ = graph_to_recexpr(g)
        input_nodes = [n for n in expr.nodes if n.op == "input"]
        assert len(input_nodes) == 1

    def test_mapping_covers_all_nodes(self):
        g = two_output_graph()
        _, mapping = graph_to_recexpr(g)
        assert set(mapping) == {n.id for n in g.nodes}

    def test_output_order_preserved(self):
        g = two_output_graph()
        expr, _ = graph_to_recexpr(g)
        g2 = recexpr_to_graph(expr)
        assert g2.nodes[g2.outputs[0]].shape == (8, 32)
        assert g2.nodes[g2.outputs[1]].shape == (8, 48)


class TestRecExprToGraph:
    def test_parses_literals(self):
        expr = RecExpr.parse('(matmul 0 (input "x@4 8") (weight "w@8 16"))')
        g = recexpr_to_graph(expr)
        assert g.nodes[g.outputs[0]].shape == (4, 16)

    def test_shape_inference_reruns(self):
        expr = RecExpr.parse('(relu (input "x@4 8"))')
        g = recexpr_to_graph(expr)
        validate_graph(g)

    def test_invalid_expression_raises(self):
        expr = RecExpr.parse('(ewadd (input "x@4 8") (input "y@4 9"))')
        with pytest.raises(Exception):
            recexpr_to_graph(expr)

    def test_unknown_operator_raises_in_strict_mode(self):
        from repro.ir.opspec import UnknownOperatorError

        expr = RecExpr.parse('(matmull 0 (input "x@4 8") (weight "w@8 16"))')
        with pytest.raises(UnknownOperatorError):
            recexpr_to_graph(expr)  # strict by default

    def test_lenient_mode_keeps_unknown_as_str(self):
        expr = RecExpr.parse('(frobnicate)')
        g = recexpr_to_graph(expr, strict=False)
        assert g.nodes[g.outputs[0]].op == OpKind.STR


class TestRoundTripProperties:
    """Hypothesis: random multi-output DAGs survive graph -> RecExpr -> graph."""

    @staticmethod
    def random_graph(data):
        b = GraphBuilder("rand")
        m = data.draw(st.integers(2, 5), label="m")
        k = data.draw(st.integers(2, 5), label="k")
        pool = [b.input("x", (m, k))]
        for step in range(data.draw(st.integers(1, 7), label="n_ops")):
            op = data.draw(
                st.sampled_from(["relu", "tanh", "sigmoid", "ewadd", "ewmul",
                                 "matmul", "transpose", "concat_split"]),
                label=f"op{step}",
            )
            src = data.draw(st.sampled_from(pool), label=f"src{step}")
            if op in ("relu", "tanh", "sigmoid"):
                pool.append(getattr(b, op)(src))
            elif op in ("ewadd", "ewmul"):
                same = [n for n in pool if b.shape(n) == b.shape(src)]
                other = data.draw(st.sampled_from(same), label=f"rhs{step}")
                pool.append(getattr(b, op)(src, other))
            elif op == "matmul":
                rows, cols = b.shape(src)
                w = b.weight(f"w{step}", (cols, data.draw(st.integers(2, 5))))
                pool.append(b.matmul(src, w))
            elif op == "transpose":
                pool.append(b.transpose(src, (1, 0)))
            else:  # concat then split back apart
                cat = b.concat(1, src, src)
                s0, s1 = b.split(1, cat)
                pool.extend([s0, s1])
        n_outputs = data.draw(st.integers(1, min(3, len(pool))), label="n_outputs")
        outputs = data.draw(
            st.lists(st.sampled_from(pool), min_size=n_outputs, max_size=n_outputs,
                     unique=True),
            label="outputs",
        )
        return b.finish(outputs=outputs)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_structure(self, data):
        from repro.service.fingerprint import graph_fingerprint

        g = self.random_graph(data)
        expr, mapping = graph_to_recexpr(g)
        g2 = recexpr_to_graph(expr)  # strict symbol resolution
        validate_graph(g2)
        live = g.pruned()
        assert len(g2.outputs) == len(g.outputs)
        for a, c in zip(g.outputs, g2.outputs):
            assert g.nodes[a].data.kind == g2.nodes[c].data.kind
            assert g.nodes[a].shape == g2.nodes[c].shape
        # The expression carries every node of g (even ones unreachable from
        # the drawn outputs), so compare the live subgraphs.
        assert g2.pruned().op_histogram() == live.op_histogram()
        # Canonical fingerprints agree: the round trip is the same
        # computation up to node numbering.
        assert graph_fingerprint(g2) == graph_fingerprint(live)


class TestTensorAnalysis:
    def test_egraph_carries_shapes(self):
        g = two_output_graph()
        eg, root = egraph_from_graph(g)
        data = eg.analysis_data(root)
        assert data.kind == DataKind.TENSOR  # noop root carries an empty-tensor marker

    def test_analysis_data_for_operator_classes(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        eg, root = egraph_from_graph(g)
        assert eg.analysis_data(root).shape == (8, 32)

    def test_rewrite_added_nodes_get_analysis_data(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.relu(b.matmul(x, w))])
        eg, root = egraph_from_graph(g)
        Rewrite.parse("fuse", "(relu (matmul 0 ?a ?b))", "(matmul 1 ?a ?b)").run(eg)
        eg.rebuild()
        assert eg.analysis_data(root).shape == (8, 32)

    def test_invalid_nodes_marked(self):
        eg = EGraph(analysis=TensorAnalysis())
        cls = eg.add_term('(ewadd (input "x@4 8") (input "y@4 9"))')
        assert not eg.analysis_data(cls).is_valid

    def test_merge_prefers_valid_data(self):
        analysis = TensorAnalysis()
        from repro.ir.tensor import TensorData

        valid = TensorData.tensor((4, 8))
        invalid = TensorData.invalid("x")
        merged, changed = analysis.merge(invalid, valid)
        assert merged.is_valid and changed
        merged, changed = analysis.merge(valid, invalid)
        assert merged.is_valid and not changed

    def test_merge_unions_split_records(self):
        analysis = TensorAnalysis()
        from repro.ir.tensor import TensorData

        a = TensorData.tensor((4, 8))
        b = TensorData.tensor((4, 8)).with_split(1, (3, 5))
        merged, changed = analysis.merge(a, b)
        assert changed
        assert merged.split_sizes_for_axis(1) == (3, 5)

    def test_strict_mode_raises_on_shape_conflict(self):
        analysis = TensorAnalysis(strict=True)
        from repro.ir.tensor import ShapeError, TensorData

        with pytest.raises(ShapeError):
            analysis.merge(TensorData.tensor((4, 8)), TensorData.tensor((4, 9)))
