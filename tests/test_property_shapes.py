"""Property-based tests: shape inference agrees with the numpy kernels, and the
key merge rewrites are numerically sound for arbitrary sizes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.executor import execute_graph, outputs_allclose
from repro.backend.kernels import conv2d, pool2d
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation, Padding
from repro.ir.shapes import conv_output_hw, infer_symbol, pool_output_hw
from repro.ir.tensor import TensorData

dims = st.integers(min_value=1, max_value=6)
small = st.integers(min_value=1, max_value=4)


class TestShapeInferenceMatchesKernels:
    @given(
        n=small, c_in=small, h=st.integers(3, 10), w=st.integers(3, 10),
        c_out=small, k=st.sampled_from([1, 3, 5]), stride=st.sampled_from([1, 2]),
        padding=st.sampled_from([Padding.SAME, Padding.VALID]),
    )
    @settings(max_examples=40, deadline=None)
    def test_conv_shapes(self, n, c_in, h, w, c_out, k, stride, padding):
        if padding == Padding.VALID and (k > h or k > w):
            return
        x = np.zeros((n, c_in, h, w))
        wt = np.zeros((c_out, c_in, k, k))
        out = conv2d(x, wt, (stride, stride), padding, Activation.NONE)
        expected_hw = conv_output_hw(h, w, k, k, stride, stride, padding)
        assert out.shape == (n, c_out) + expected_hw

    @given(
        n=small, c=small, h=st.integers(2, 10), w=st.integers(2, 10),
        k=st.sampled_from([2, 3]), stride=st.sampled_from([1, 2]),
        padding=st.sampled_from([Padding.SAME, Padding.VALID]),
        mode=st.sampled_from(["max", "avg"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_pool_shapes(self, n, c, h, w, k, stride, padding, mode):
        if padding == Padding.VALID and (k > h or k > w):
            return
        x = np.zeros((n, c, h, w))
        out = pool2d(x, (k, k), (stride, stride), padding, Activation.NONE, mode)
        assert out.shape == (n, c) + pool_output_hw(h, w, k, k, stride, stride, padding)

    @given(m=dims, k=dims, n1=dims)
    @settings(max_examples=30, deadline=None)
    def test_matmul_inference_matches_numpy(self, m, k, n1):
        inferred = infer_symbol(
            "matmul", [TensorData.integer(0), TensorData.tensor((m, k)), TensorData.tensor((k, n1))]
        )
        assert inferred.shape == (np.zeros((m, k)) @ np.zeros((k, n1))).shape


class TestMergeRewritesAreSoundForArbitrarySizes:
    @given(m=dims, k=dims, n1=dims, n2=dims)
    @settings(max_examples=30, deadline=None)
    def test_matmul_merge_shared_lhs(self, m, k, n1, n2):
        b = GraphBuilder("orig")
        x = b.input("x", (m, k))
        w1 = b.weight("w1", (k, n1))
        w2 = b.weight("w2", (k, n2))
        g1 = b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])

        b = GraphBuilder("merged")
        x = b.input("x", (m, k))
        w1 = b.weight("w1", (k, n1))
        w2 = b.weight("w2", (k, n2))
        s0, s1 = b.split(1, b.matmul(x, b.concat(1, w1, w2)))
        g2 = b.finish(outputs=[s0, s1])
        assert outputs_allclose(execute_graph(g1), execute_graph(g2))

    @given(m=dims, k1=dims, k2=dims, n=dims)
    @settings(max_examples=30, deadline=None)
    def test_fig11_merge(self, m, k1, k2, n):
        b = GraphBuilder("orig")
        x = b.input("x", (m, k1))
        y = b.input("y", (m, k2))
        w1 = b.weight("w1", (k1, n))
        w2 = b.weight("w2", (k2, n))
        g1 = b.finish(outputs=[b.ewadd(b.matmul(x, w1), b.matmul(y, w2))])

        b = GraphBuilder("merged")
        x = b.input("x", (m, k1))
        y = b.input("y", (m, k2))
        w1 = b.weight("w1", (k1, n))
        w2 = b.weight("w2", (k2, n))
        g2 = b.finish(outputs=[b.matmul(b.concat(1, x, y), b.concat(0, w1, w2))])
        assert outputs_allclose(execute_graph(g1), execute_graph(g2))

    @given(
        c_in=small, h=st.integers(4, 8), c1=small, c2=small,
        act=st.sampled_from([Activation.NONE, Activation.RELU, Activation.TANH]),
    )
    @settings(max_examples=20, deadline=None)
    def test_conv_merge_shared_input(self, c_in, h, c1, c2, act):
        b = GraphBuilder("orig")
        x = b.input("x", (1, c_in, h, h))
        w1 = b.weight("w1", (c1, c_in, 3, 3))
        w2 = b.weight("w2", (c2, c_in, 3, 3))
        g1 = b.finish(outputs=[b.conv(x, w1, activation=act), b.conv(x, w2, activation=act)])

        b = GraphBuilder("merged")
        x = b.input("x", (1, c_in, h, h))
        w1 = b.weight("w1", (c1, c_in, 3, 3))
        w2 = b.weight("w2", (c2, c_in, 3, 3))
        s0, s1 = b.split(1, b.conv(x, b.concat(0, w1, w2), activation=act))
        g2 = b.finish(outputs=[s0, s1])
        assert outputs_allclose(execute_graph(g1), execute_graph(g2))

    @given(c_in=small, h=st.integers(4, 8), c1=small, c2=small)
    @settings(max_examples=20, deadline=None)
    def test_enlarge_merge(self, c_in, h, c1, c2):
        b = GraphBuilder("orig")
        x = b.input("x", (1, c_in, h, h))
        w1 = b.weight("w1", (c1, c_in, 1, 1))
        w2 = b.weight("w2", (c2, c_in, 3, 3))
        g1 = b.finish(outputs=[b.conv(x, w1), b.conv(x, w2)])

        b = GraphBuilder("merged")
        x = b.input("x", (1, c_in, h, h))
        w1 = b.weight("w1", (c1, c_in, 1, 1))
        w2 = b.weight("w2", (c2, c_in, 3, 3))
        merged_w = b.concat(0, b.enlarge(w1, w2), w2)
        s0, s1 = b.split(1, b.conv(x, merged_w))
        g2 = b.finish(outputs=[s0, s1])
        assert outputs_allclose(execute_graph(g1), execute_graph(g2))
