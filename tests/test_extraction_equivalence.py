"""Property suite: the extraction strategies agree on random small e-graphs.

The three strategies form a quality ladder -- greedy is a heuristic, BnB and
the HiGHS ILP are exact -- and the problem-reduction pass must never move the
optimum.  Costs are drawn as small integers so "same cost" is exact float
equality (sums of small ints are exactly representable), letting the
pruned-vs-unpruned property assert bit-for-bit equality rather than an
approximate match.

Random instances include e-class cycles (a term unioned with its own
subterm), so the exact extractors run with the topological-order cycle
constraints enabled; greedy is acyclic by construction.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import sexpr as sx
from repro.egraph.egraph import EGraph
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.problem import build_extraction_problem, warm_start_solution

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #

atoms = st.text(alphabet=string.ascii_lowercase[:6], min_size=1, max_size=2)


def sexpr_trees():
    return st.recursive(
        atoms,
        lambda children: st.lists(children, min_size=1, max_size=3).map(
            lambda kids: ["op" + str(len(kids))] + kids
        ),
        max_leaves=6,
    )


@st.composite
def egraph_instances(draw):
    """A small e-graph built from random terms, random unions, integer costs.

    Unions between term roots can merge a class with one of its own
    descendants, creating e-class cycles -- exactly the shape cycle
    constraints exist for.
    """
    trees = draw(st.lists(sexpr_trees(), min_size=2, max_size=4))
    eg = EGraph()
    roots = [eg.add_term(sx.to_string(t)) for t in trees]
    n_unions = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_unions):
        a = draw(st.sampled_from(roots))
        b = draw(st.sampled_from(roots))
        eg.union(a, b)
    eg.rebuild()
    root = eg.find(roots[0])

    ops = sorted({node.op for eclass in eg.classes() for node in eclass.nodes})
    costs = {op: draw(st.integers(min_value=1, max_value=9)) for op in ops}
    return eg, root, costs


def cost_fn(costs):
    return lambda enode, egraph: float(costs.get(enode.op, 1))


def selection_is_acyclic_and_complete(eg, root, result):
    """Walk the extracted choices from the root: every class chosen, no cycle."""
    seen = set()
    on_path = set()

    def visit(cid):
        cid = eg.find(cid)
        if cid in seen:
            return
        assert cid not in on_path, "cyclic extraction selection"
        assert cid in {eg.find(c) for c in result.choices}, "missing choice"
        on_path.add(cid)
        node = result.choices[cid] if cid in result.choices else result.choices[eg.find(cid)]
        for child in node.children:
            visit(child)
        on_path.discard(cid)
        seen.add(cid)

    choices_canonical = {eg.find(c): n for c, n in result.choices.items()}
    result.choices.update(choices_canonical)
    visit(root)


class TestStrategyEquivalence:
    @given(egraph_instances())
    @settings(max_examples=25, deadline=None)
    def test_cost_ladder_ilp_le_bnb_le_greedy(self, instance):
        eg, root, costs = instance
        nc = cost_fn(costs)
        greedy = GreedyExtractor(nc).extract(eg, root)
        bnb = ILPExtractor(nc, backend="bnb", with_cycle_constraints=True).extract(eg, root)
        ilp = ILPExtractor(nc, backend="scipy", with_cycle_constraints=True).extract(eg, root)
        assert ilp.cost <= bnb.cost + 1e-9
        assert bnb.cost <= greedy.cost + 1e-9
        # Both exact backends prove the same optimum.
        assert ilp.cost == pytest.approx(bnb.cost)

    @given(egraph_instances())
    @settings(max_examples=25, deadline=None)
    def test_all_strategies_produce_valid_cycle_free_terms(self, instance):
        eg, root, costs = instance
        nc = cost_fn(costs)
        for result in (
            GreedyExtractor(nc).extract(eg, root),
            ILPExtractor(nc, backend="bnb", with_cycle_constraints=True).extract(eg, root),
            ILPExtractor(nc, backend="scipy", with_cycle_constraints=True).extract(eg, root),
        ):
            # build_recexpr already raises on a cyclic selection; re-verify
            # the invariant independently over the raw choices.
            selection_is_acyclic_and_complete(eg, root, result)
            assert result.expr.subterm_size() >= 1

    @given(egraph_instances())
    @settings(max_examples=25, deadline=None)
    def test_pruning_never_changes_the_ilp_optimum(self, instance):
        eg, root, costs = instance
        nc = cost_fn(costs)
        pruned = ILPExtractor(
            nc, with_cycle_constraints=True, reduce_problem=True, warm_start=False
        ).extract(eg, root)
        unpruned = ILPExtractor(
            nc, with_cycle_constraints=True, reduce_problem=False, warm_start=False
        ).extract(eg, root)
        # Integer costs: the optima must agree bit-for-bit, not just approximately.
        assert pruned.cost == unpruned.cost

    @given(egraph_instances())
    @settings(max_examples=25, deadline=None)
    def test_warm_start_never_changes_the_ilp_optimum(self, instance):
        eg, root, costs = instance
        nc = cost_fn(costs)
        warm = ILPExtractor(nc, with_cycle_constraints=True, warm_start=True).extract(eg, root)
        cold = ILPExtractor(nc, with_cycle_constraints=True, warm_start=False).extract(eg, root)
        assert warm.cost == cold.cost


class TestWarmStartSolution:
    @given(egraph_instances())
    @settings(max_examples=25, deadline=None)
    def test_warm_start_objective_matches_its_vector(self, instance):
        eg, root, costs = instance
        nc = cost_fn(costs)
        problem = build_extraction_problem(
            eg, root, nc, with_cycle_constraints=True, prune_dominated=True, collapse_singletons=True
        )
        warm = warm_start_solution(problem)
        if warm is None:
            return  # greedy hit a selection cycle; nothing to check
        x0, obj = warm
        assert float(problem.c @ x0) == pytest.approx(obj)
