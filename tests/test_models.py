"""Tests for the benchmark model constructors."""

import pytest

from repro.backend import execute_graph
from repro.costs import AnalyticCostModel
from repro.ir.ops import OpKind
from repro.ir.validate import validate_graph
from repro.models import MODEL_NAMES, build_model, model_registry


class TestRegistry:
    def test_all_names_registered(self):
        registry = model_registry()
        assert set(MODEL_NAMES) == set(registry)

    def test_aliases(self):
        g = build_model("ResNeXt-50", "tiny")
        assert g.name.startswith("resnext")
        g = build_model("NasNet-A", "tiny")
        assert g.name.startswith("nasnet")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_model("bert", scale="huge")


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestEveryModel:
    def test_tiny_graph_is_valid(self, name):
        g = build_model(name, "tiny")
        validate_graph(g)
        assert g.num_compute_nodes() > 0

    def test_small_graph_is_valid_and_bigger(self, name):
        tiny = build_model(name, "tiny")
        small = build_model(name, "small")
        validate_graph(small)
        assert small.num_compute_nodes() >= tiny.num_compute_nodes()

    def test_tiny_graph_executes(self, name):
        g = build_model(name, "tiny")
        result = execute_graph(g)
        assert len(result.outputs) == len(g.outputs)

    def test_cost_is_positive(self, name):
        cm = AnalyticCostModel()
        assert cm.graph_cost(build_model(name, "tiny")) > 0


class TestArchitectureStructure:
    def test_nasrnn_has_many_matmuls_sharing_inputs(self):
        g = build_model("nasrnn", "small")
        assert g.op_histogram()["matmul"] >= 16

    def test_bert_has_attention_and_ffn_matmuls(self):
        g = build_model("bert", "small", layers=1)
        hist = g.op_histogram()
        assert hist["matmul"] == 8  # q, k, v, scores, context, out, ffn1, ffn2
        assert hist["transpose"] == 1

    def test_resnext_uses_grouped_convolutions(self):
        g = build_model("resnext", "tiny")
        grouped = [
            n
            for n in g.nodes
            if n.op == OpKind.CONV
            and g.nodes[n.inputs[4]].data.shape[1] != g.nodes[n.inputs[5]].data.shape[1]
        ]
        assert grouped, "expected at least one grouped convolution"

    def test_squeezenet_fire_modules_share_squeeze_output(self):
        g = build_model("squeezenet", "tiny")
        consumers = g.consumers()
        conv_inputs = {}
        for n in g.nodes:
            if n.op == OpKind.CONV:
                conv_inputs.setdefault(n.inputs[4], []).append(n.id)
        assert any(len(v) >= 2 for v in conv_inputs.values()), "expand convs must share an input"

    def test_inception_concatenates_four_branches(self):
        g = build_model("inception", "tiny")
        concat_nodes = [n for n in g.nodes if n.op == OpKind.CONCAT]
        assert any(len(n.inputs) == 5 for n in concat_nodes)  # axis + 4 tensors

    def test_vgg_is_a_chain_without_sharing(self):
        g = build_model("vgg", "tiny")
        consumers = g.consumers()
        conv_ids = [n.id for n in g.nodes if n.op == OpKind.CONV]
        for cid in conv_ids:
            assert len(consumers[cid]) <= 1

    def test_nasnet_contains_depthwise_separable_convs(self):
        g = build_model("nasnet", "small")
        depthwise = [
            n
            for n in g.nodes
            if n.op == OpKind.CONV and g.nodes[n.inputs[5]].data.shape[1] == 1
        ]
        assert depthwise

    def test_scale_overrides(self):
        g = build_model("bert", "tiny", layers=3)
        assert g.op_histogram()["matmul"] == 3 * 8

    def test_models_have_single_or_known_outputs(self):
        for name in MODEL_NAMES:
            g = build_model(name, "tiny")
            assert len(g.outputs) >= 1
