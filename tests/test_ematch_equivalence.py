"""Equivalence of the compiled e-matching VM and the naive matcher.

The compiled virtual machine (:mod:`repro.egraph.machine`) must return
exactly the same canonical match set as the interpretive backtracking matcher
for every rule in the library, on clean e-graphs, on dirty e-graphs (pending
unions mid-iteration), and through incremental (delta-seeded) searches.
These tests treat the naive matcher as the executable specification.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import (
    naive_search_eclass,
    naive_search_pattern,
    search_eclass,
    search_pattern,
)
from repro.egraph.language import RecExpr
from repro.egraph.machine import (
    BIND,
    COMPARE,
    LOOKUP,
    YIELD,
    IncrementalMatcher,
    TrieMatcher,
    build_rule_trie,
    compile_pattern,
)
from repro.egraph.pattern import Pattern, PatternNode
from repro.ir.convert import egraph_from_graph
from repro.ir.graph import GraphBuilder
from repro.rules import default_ruleset

RULESET = default_ruleset()


def all_source_patterns():
    """Every source pattern the exploration phase ever e-matches."""
    patterns = [rw.lhs for rw in RULESET.rewrites]
    for rule in RULESET.multi_rewrites:
        patterns.extend(rule.sources)
    return patterns


SOURCE_PATTERNS = all_source_patterns()


def canonical_match_set(egraph, matches):
    return {
        (egraph.find(m.eclass), frozenset((k, egraph.find(v)) for k, v in m.subst.items()))
        for m in matches
    }


def assert_equivalent(egraph, pattern):
    vm = search_pattern(egraph, pattern)
    naive = naive_search_pattern(egraph, pattern)
    assert canonical_match_set(egraph, vm) == canonical_match_set(egraph, naive), str(pattern)
    # Both matchers also agree on the deterministic list order, which is what
    # makes them interchangeable trajectory-for-trajectory in the runner.
    assert vm == naive, str(pattern)


# --------------------------------------------------------------------- #
# Strategies: random terms over the rule library's operator vocabulary
# --------------------------------------------------------------------- #


def op_vocabulary():
    vocab = set()

    def go(term):
        if isinstance(term, PatternNode):
            vocab.add((term.op, len(term.children)))
            for child in term.children:
                go(child)

    for pattern in SOURCE_PATTERNS:
        go(pattern.root)
    return sorted(vocab)


OPS = op_vocabulary()
LEAF_ATOMS = ["a", "b", "c", "x", "y", "0", "1", "2"]


@st.composite
def term_sexprs(draw, depth=3):
    """Random S-expressions using the rule library's operators and arities."""
    if depth == 0 or draw(st.integers(min_value=0, max_value=2)) == 0:
        return draw(st.sampled_from(LEAF_ATOMS))
    op, arity = draw(st.sampled_from(OPS))
    if arity == 0:
        return op
    return [op] + [draw(term_sexprs(depth=depth - 1)) for _ in range(arity)]


@st.composite
def egraph_scripts(draw):
    """A few random terms plus a random union script over their e-classes."""
    trees = draw(st.lists(term_sexprs(), min_size=2, max_size=4))
    n_unions = draw(st.integers(min_value=0, max_value=5))
    seeds = [draw(st.integers(min_value=0, max_value=10 ** 6)) for _ in range(2 * n_unions)]
    return trees, seeds


def build_from_script(trees, union_seeds):
    egraph = EGraph()
    for tree in trees:
        egraph.add_expr(RecExpr.from_sexpr(tree))
    ids = egraph.eclass_ids()
    for a_seed, b_seed in zip(union_seeds[::2], union_seeds[1::2]):
        egraph.union(ids[a_seed % len(ids)], ids[b_seed % len(ids)])
    return egraph


# --------------------------------------------------------------------- #
# Hand-built e-graphs: every rule, clean and dirty
# --------------------------------------------------------------------- #


def _tensor_egraph():
    b = GraphBuilder("equiv")
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, 32))
    w2 = b.weight("w2", (64, 32))
    m1 = b.matmul(x, w1)
    m2 = b.matmul(x, w2)
    s = b.ewadd(m1, m2)
    graph = b.finish(outputs=[b.relu(s)])
    egraph, root = egraph_from_graph(graph)
    return egraph, root


class TestEveryRuleOnHandBuiltGraphs:
    def test_all_rules_on_tensor_egraph(self):
        egraph, _root = _tensor_egraph()
        for pattern in SOURCE_PATTERNS:
            assert_equivalent(egraph, pattern)

    def test_all_rules_after_applying_rewrites(self):
        egraph, _root = _tensor_egraph()
        # Apply every rule once (naive path) to grow the e-graph, rebuild,
        # then compare the matchers on the richer graph.
        for rewrite in RULESET.rewrites:
            for match in rewrite.filter_matches(egraph, naive_search_pattern(egraph, rewrite.lhs)):
                rewrite.apply_match(egraph, match)
        egraph.rebuild()
        for pattern in SOURCE_PATTERNS:
            assert_equivalent(egraph, pattern)

    def test_all_rules_on_dirty_egraph(self):
        """Mid-iteration searches run with unions pending; both matchers must agree."""
        egraph, _root = _tensor_egraph()
        ids = egraph.eclass_ids()
        egraph.union(ids[1], ids[2])
        egraph.union(ids[0], ids[-1])
        assert not egraph.is_clean()
        for pattern in SOURCE_PATTERNS:
            assert_equivalent(egraph, pattern)

    def test_search_eclass_agrees(self):
        egraph, root = _tensor_egraph()
        for pattern in SOURCE_PATTERNS:
            vm = search_eclass(egraph, pattern, root)
            naive = naive_search_eclass(egraph, pattern, root)
            assert canonical_match_set(egraph, vm) == canonical_match_set(egraph, naive)


# --------------------------------------------------------------------- #
# Property-based: random e-graphs, random union/rebuild sequences
# --------------------------------------------------------------------- #


class TestEquivalenceProperties:
    @given(egraph_scripts())
    @settings(max_examples=20, deadline=None)
    def test_every_rule_after_random_unions_and_rebuild(self, script):
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)
        egraph.rebuild()
        for pattern in SOURCE_PATTERNS:
            assert_equivalent(egraph, pattern)

    @given(egraph_scripts())
    @settings(max_examples=15, deadline=None)
    def test_every_rule_on_dirty_graph(self, script):
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)  # unions pending, no rebuild
        for pattern in SOURCE_PATTERNS:
            assert_equivalent(egraph, pattern)

    @given(egraph_scripts(), st.lists(term_sexprs(), min_size=1, max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_incremental_matches_full_search(self, script, extra_trees):
        """cached-matches ∪ delta-closure re-search == full naive search."""
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)
        egraph.rebuild()

        matchers = [IncrementalMatcher(p) for p in SOURCE_PATTERNS]
        for matcher in matchers:
            matcher.search(egraph)  # populate caches with a full search
        egraph.take_dirty()

        # Grow the e-graph: new terms plus a union, then rebuild.
        for tree in extra_trees:
            egraph.add_expr(RecExpr.from_sexpr(tree))
        ids = egraph.eclass_ids()
        egraph.union(ids[0], ids[-1])
        egraph.rebuild()
        delta = egraph.take_dirty()

        for matcher in matchers:
            incremental = matcher.search(egraph, delta=delta)
            full = naive_search_pattern(egraph, matcher.pattern)
            assert incremental == full, str(matcher.pattern)

    def test_union_at_max_variable_depth_creates_match_incrementally(self):
        """Regression: a union of classes bound by a repeated variable at the
        pattern's deepest level creates a match rooted ``depth`` parent hops
        above the dirty class, so the delta closure must climb ``depth`` hops
        (not ``depth - 1``)."""
        egraph = EGraph()
        egraph.add_term("(ewadd (ewmul a b) (ewmul c d))")
        pattern = Pattern.parse("(ewadd (ewmul ?x ?z) (ewmul ?y ?z))")
        matcher = IncrementalMatcher(pattern)
        assert matcher.search(egraph) == []  # b != d: the repeated ?z fails
        egraph.take_dirty()

        b = egraph.add_term("b")
        d = egraph.add_term("d")
        egraph.union(b, d)
        egraph.rebuild()
        delta = egraph.take_dirty()

        incremental = matcher.search(egraph, delta=delta)
        full = naive_search_pattern(egraph, pattern)
        assert incremental == full
        assert len(incremental) == 1


# --------------------------------------------------------------------- #
# Shared-prefix rule trie: one traversal per op bucket == R per-rule sweeps
# --------------------------------------------------------------------- #


def assert_trie_equivalent(egraph, patterns, trie_matcher=None, delta=None):
    """The trie's per-rule lists must equal the per-rule VM and naive lists."""
    matcher = trie_matcher if trie_matcher is not None else TrieMatcher(patterns)
    all_matches = matcher.search_all(egraph, delta=delta)
    assert len(all_matches) == len(patterns)
    for pattern, trie_matches in zip(patterns, all_matches):
        naive = naive_search_pattern(egraph, pattern)
        assert trie_matches == naive, str(pattern)
        if delta is None:
            assert trie_matches == search_pattern(egraph, pattern), str(pattern)


class TestTrieEquivalence:
    def test_all_rules_on_tensor_egraph(self):
        egraph, _root = _tensor_egraph()
        assert_trie_equivalent(egraph, SOURCE_PATTERNS)

    def test_all_rules_on_dirty_egraph(self):
        egraph, _root = _tensor_egraph()
        ids = egraph.eclass_ids()
        egraph.union(ids[1], ids[2])
        egraph.union(ids[0], ids[-1])
        assert not egraph.is_clean()
        assert_trie_equivalent(egraph, SOURCE_PATTERNS)

    def test_trie_shares_instruction_prefixes(self):
        trie = build_rule_trie(SOURCE_PATTERNS)
        stats = trie.sharing_stats()
        # The rule library has many rules per root operator; merging their
        # Bind/Compare prefixes must eliminate a real number of instructions.
        assert stats["insts_saved"] > 0
        assert stats["insts_shared"] < stats["insts_unshared"]
        assert len(trie.buckets) < trie.n_rules

    def test_variable_root_patterns_supported(self):
        egraph, _root = _tensor_egraph()
        patterns = [Pattern.parse("?x"), Pattern.parse("(relu ?a)")]
        assert_trie_equivalent(egraph, patterns)

    @given(egraph_scripts())
    @settings(max_examples=20, deadline=None)
    def test_trie_equals_per_rule_and_naive_on_random_egraphs(self, script):
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)
        egraph.rebuild()
        assert_trie_equivalent(egraph, SOURCE_PATTERNS)

    @given(egraph_scripts())
    @settings(max_examples=10, deadline=None)
    def test_trie_equals_per_rule_and_naive_on_random_dirty_egraphs(self, script):
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)  # unions pending
        assert_trie_equivalent(egraph, SOURCE_PATTERNS)

    @given(egraph_scripts(), st.lists(term_sexprs(), min_size=1, max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_trie_incremental_matches_full_search(self, script, extra_trees):
        """Per-rule caches ∪ bucket delta-closure re-search == full naive search."""
        trees, union_seeds = script
        egraph = build_from_script(trees, union_seeds)
        egraph.rebuild()

        matcher = TrieMatcher(SOURCE_PATTERNS)
        matcher.search_all(egraph)  # populate per-rule caches
        egraph.take_dirty()

        for tree in extra_trees:
            egraph.add_expr(RecExpr.from_sexpr(tree))
        ids = egraph.eclass_ids()
        egraph.union(ids[0], ids[-1])
        egraph.rebuild()
        delta = egraph.take_dirty()

        assert_trie_equivalent(egraph, SOURCE_PATTERNS, trie_matcher=matcher, delta=delta)

    def test_skip_suppresses_maintenance_and_reactivation_recovers(self):
        """``skip`` indices return [] without cache upkeep (the runner uses
        this for multi-pattern slots past the k_multi window); un-skipping a
        previously skipped index must fall back to a full, correct search."""
        egraph, _root = _tensor_egraph()
        patterns = [Pattern.parse("(relu ?a)"), Pattern.parse("(matmul ?x ?y ?z)")]
        matcher = TrieMatcher(patterns)
        matcher.search_all(egraph)
        egraph.take_dirty()

        extra = egraph.add_term("(relu (matmul 0 q r))")
        egraph.rebuild()
        delta = egraph.take_dirty()

        skipped = matcher.search_all(egraph, delta=delta, skip=[1])
        assert skipped[0] == naive_search_pattern(egraph, patterns[0])
        assert skipped[1] == []

        # Re-activate index 1: its cache was dropped, so the matcher must
        # recover with a full search and agree with the naive matcher again.
        egraph.take_dirty()
        reactivated = matcher.search_all(egraph, delta=set())
        for pattern, matches in zip(patterns, reactivated):
            assert matches == naive_search_pattern(egraph, pattern), str(pattern)
        del extra

    def test_trie_incremental_union_at_max_variable_depth(self):
        """Bucket closures climb the *max* depth of their rules; the deepest
        rule's matches must still appear (same regression as the per-rule
        matcher, through the shared path)."""
        egraph = EGraph()
        egraph.add_term("(ewadd (ewmul a b) (ewmul c d))")
        patterns = [
            Pattern.parse("(ewadd ?x ?y)"),  # shallow rule in the same bucket
            Pattern.parse("(ewadd (ewmul ?x ?z) (ewmul ?y ?z))"),
        ]
        matcher = TrieMatcher(patterns)
        assert matcher.search_all(egraph)[1] == []  # b != d: repeated ?z fails
        egraph.take_dirty()

        b = egraph.add_term("b")
        d = egraph.add_term("d")
        egraph.union(b, d)
        egraph.rebuild()
        delta = egraph.take_dirty()

        assert_trie_equivalent(egraph, patterns, trie_matcher=matcher, delta=delta)
        assert len(matcher.search_all(egraph, delta=set())[1]) == 1


# --------------------------------------------------------------------- #
# VM internals: programs and the Lookup instruction
# --------------------------------------------------------------------- #


class TestPrograms:
    def test_programs_cached_per_pattern(self):
        p1 = Pattern.parse("(ewadd ?a (matmul 0 ?b ?c))")
        p2 = Pattern.parse("(ewadd ?a (matmul 0 ?b ?c))")
        assert compile_pattern(p1) is compile_pattern(p2)

    def test_program_shape(self):
        program = compile_pattern(Pattern.parse("(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))"))
        opcodes = [inst[0] for inst in program.insts]
        assert opcodes[-1] == YIELD
        assert opcodes.count(COMPARE) == 1  # the repeated ?a
        assert opcodes.count(BIND) >= 3
        assert program.depth == 3  # ewadd -> matmul -> the literal 0 leaf
        assert program.root_op == "ewadd"

    def test_ground_subterm_compiles_to_lookup(self):
        program = compile_pattern(Pattern.parse("(ewadd ?y (matmul 0 x w1))"))
        assert any(inst[0] == LOOKUP for inst in program.insts)

    def test_lookup_matches_on_clean_and_dirty_graphs(self):
        pattern = Pattern.parse("(ewadd ?y (matmul 0 x w1))")
        egraph = EGraph()
        egraph.add_term("(ewadd (matmul 0 x w2) (matmul 0 x w1))")
        assert egraph.is_clean()
        assert_equivalent(egraph, pattern)
        assert len(search_pattern(egraph, pattern)) == 1

        # Dirty: congruent-but-unmerged copies must still be found.
        a = egraph.add_term("(ewadd q (matmul 0 x w3))")
        w3 = egraph.add_term("w3")
        w1 = egraph.add_term("w1")
        egraph.union(w3, w1)
        assert not egraph.is_clean()
        assert_equivalent(egraph, pattern)
        del a

    def test_rules_hold_precompiled_programs(self):
        for rewrite in RULESET.rewrites:
            assert rewrite.program is compile_pattern(rewrite.lhs)
