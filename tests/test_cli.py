"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.ir.serialize import load_graph


class TestParser:
    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize", "--model", "nasrnn"])
        assert args.model == "nasrnn"
        assert args.scale == "tiny"
        assert args.extraction == "ilp"

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--model", "alexnet"])

    def test_engine_knob_defaults(self):
        args = build_parser().parse_args(["optimize", "--model", "nasrnn"])
        assert args.matcher == "vm"
        assert args.search_mode == "trie"
        assert args.scheduler == "simple"

    def test_engine_knobs_parse(self):
        args = build_parser().parse_args(
            [
                "optimize", "--model", "nasrnn",
                "--matcher", "naive",
                "--search-mode", "per-rule",
                "--scheduler", "backoff",
            ]
        )
        assert args.matcher == "naive"
        assert args.search_mode == "per-rule"
        assert args.scheduler == "backoff"

    @pytest.mark.parametrize("flag,value", [
        ("--matcher", "regex"),
        ("--search-mode", "hash"),
        ("--scheduler", "adaptive"),
    ])
    def test_invalid_engine_knobs_rejected(self, flag, value):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "--model", "nasrnn", flag, value])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_all(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "nasrnn" in out and "inception" in out

    def test_rules_listing_and_tag_filter(self, capsys):
        assert main(["rules"]) == 0
        everything = capsys.readouterr().out
        assert "matmul-merge-shared-lhs" in everything
        assert main(["rules", "--tag", "merge"]) == 0
        merges = capsys.readouterr().out
        assert "matmul-merge-shared-lhs" in merges
        assert "fuse-matmul-relu" not in merges

    def test_optimize_json_output(self, capsys):
        code = main(
            [
                "optimize",
                "--model", "nasrnn",
                "--scale", "tiny",
                "--node-limit", "1000",
                "--iter-limit", "4",
                "--ilp-time-limit", "20",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["speedup_percent"] >= 0
        assert payload["enodes"] > 0
        # The phase breakdown of exploration time is part of the JSON contract.
        for key in ("search_seconds", "apply_seconds", "rebuild_seconds"):
            assert key in payload
            assert payload[key] >= 0
        assert (
            payload["search_seconds"] + payload["apply_seconds"] + payload["rebuild_seconds"]
            <= payload["exploration_seconds"] + 1e-6
        )

    def test_optimize_with_engine_knobs(self, capsys):
        code = main(
            [
                "optimize",
                "--model", "nasrnn",
                "--scale", "tiny",
                "--node-limit", "800",
                "--iter-limit", "3",
                "--extraction", "greedy",
                "--matcher", "naive",
                "--search-mode", "per-rule",
                "--scheduler", "backoff",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["enodes"] > 0

    def test_optimize_writes_graph_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "optimized.json")
        code = main(
            [
                "optimize",
                "--model", "nasrnn",
                "--scale", "tiny",
                "--node-limit", "1000",
                "--iter-limit", "4",
                "--ilp-time-limit", "20",
                "--output", out_path,
            ]
        )
        assert code == 0
        graph = load_graph(out_path)
        assert graph.num_compute_nodes() > 0

    def test_compare_json(self, capsys):
        code = main(
            ["compare", "--model", "vgg", "--scale", "tiny", "--taso-budget", "5", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tensat"]["speedup_percent"] >= 0
        assert payload["taso"]["total_seconds"] >= 0
