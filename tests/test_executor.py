"""Tests for the graph executor."""

import numpy as np
import pytest

from repro.backend.executor import Executor, execute_graph, outputs_allclose, random_feeds
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation, Padding


def simple_graph():
    b = GraphBuilder("simple")
    x = b.input("x", (4, 8))
    w = b.weight("w", (8, 16))
    return b.finish(outputs=[b.relu(b.matmul(x, w))])


class TestRandomFeeds:
    def test_covers_all_identifiers(self):
        g = simple_graph()
        feeds = random_feeds(g)
        assert set(feeds) == {"x@4 8", "w@8 16"}
        assert feeds["x@4 8"].shape == (4, 8)

    def test_deterministic_per_identifier(self):
        g = simple_graph()
        a = random_feeds(g)
        b = random_feeds(g)
        assert np.array_equal(a["x@4 8"], b["x@4 8"])

    def test_salt_changes_data(self):
        g = simple_graph()
        assert not np.array_equal(random_feeds(g, salt=0)["x@4 8"], random_feeds(g, salt=1)["x@4 8"])


class TestExecutor:
    def test_matches_manual_numpy(self):
        g = simple_graph()
        feeds = random_feeds(g)
        result = execute_graph(g, feeds)
        expected = np.maximum(feeds["x@4 8"] @ feeds["w@8 16"], 0.0)
        assert np.allclose(result.output(), expected)

    def test_explicit_feeds_override_defaults(self):
        g = simple_graph()
        x = np.ones((4, 8))
        w = np.ones((8, 16))
        result = execute_graph(g, {"x@4 8": x, "w@8 16": w})
        assert np.allclose(result.output(), 8.0)

    def test_wrong_feed_shape_raises(self):
        g = simple_graph()
        with pytest.raises(ValueError):
            execute_graph(g, {"x@4 8": np.ones((3, 8))})

    def test_multiple_outputs(self):
        b = GraphBuilder()
        x = b.input("x", (2, 4))
        w1 = b.weight("w1", (4, 3))
        w2 = b.weight("w2", (4, 5))
        g = b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])
        result = execute_graph(g)
        assert result.output(0).shape == (2, 3)
        assert result.output(1).shape == (2, 5)

    def test_conv_pool_pipeline_runs(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        w = b.weight("w", (4, 3, 3, 3))
        c = b.conv(x, w, activation=Activation.RELU)
        p = b.poolavg(c, (2, 2), (2, 2), Padding.VALID)
        g = b.finish(outputs=[p])
        result = execute_graph(g)
        assert result.output().shape == g.nodes[g.outputs[0]].shape

    def test_outputs_allclose(self):
        g = simple_graph()
        a = execute_graph(g, salt=0)
        b = execute_graph(g, salt=0)
        c = execute_graph(g, salt=1)
        assert outputs_allclose(a, b)
        assert not outputs_allclose(a, c)

    def test_outputs_allclose_length_mismatch(self):
        g = simple_graph()
        b2 = GraphBuilder()
        x = b2.input("x", (2, 4))
        w1 = b2.weight("w1", (4, 3))
        w2 = b2.weight("w2", (4, 5))
        g2 = b2.finish(outputs=[b2.matmul(x, w1), b2.matmul(x, w2)])
        assert not outputs_allclose(execute_graph(g), execute_graph(g2))
