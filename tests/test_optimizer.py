"""End-to-end tests of the TENSAT optimizer."""

import pytest

from repro import TensatConfig, TensatOptimizer, optimize
from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel
from repro.ir.graph import GraphBuilder
from repro.ir.validate import check_same_interface, validate_graph
from repro.rules import default_ruleset
from repro.search import BacktrackingSearch

# End-to-end saturation runs; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

FAST = TensatConfig.fast()


class TestOptimizeEndToEnd:
    def test_shared_matmuls(self, shared_matmul_graph):
        result = optimize(shared_matmul_graph, config=FAST, verify_numerically=True)
        assert result.speedup_percent > 0
        validate_graph(result.optimized)
        check_same_interface(result.original, result.optimized)

    def test_nasrnn_like_graph(self, nasrnn_like_graph):
        result = optimize(nasrnn_like_graph, config=FAST, verify_numerically=True)
        assert result.speedup_percent > 0
        assert result.stats.num_enodes > len(nasrnn_like_graph)

    def test_never_worse_than_original(self):
        b = GraphBuilder("single")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g = b.finish(outputs=[b.matmul(x, w)])
        result = optimize(g, config=FAST)
        assert result.optimized_cost <= result.original_cost + 1e-12

    def test_greedy_extraction_mode(self, nasrnn_like_graph):
        result = optimize(nasrnn_like_graph, config=FAST, extraction="greedy")
        assert result.optimized_cost <= result.original_cost + 1e-12

    def test_greedy_never_beats_ilp(self, nasrnn_like_graph):
        greedy = optimize(nasrnn_like_graph, config=FAST, extraction="greedy")
        ilp = optimize(nasrnn_like_graph, config=FAST, extraction="ilp")
        assert ilp.optimized_cost <= greedy.optimized_cost + 1e-9

    def test_ilp_with_cycle_constraints_and_no_filtering(self, shared_matmul_graph):
        result = optimize(
            shared_matmul_graph,
            config=FAST,
            cycle_filter="none",
            ilp_cycle_constraints=True,
        )
        validate_graph(result.optimized)
        assert result.speedup_percent >= 0

    def test_kmulti_zero_disables_merges(self, shared_matmul_graph):
        no_multi = optimize(shared_matmul_graph, config=FAST, k_multi=0)
        with_multi = optimize(shared_matmul_graph, config=FAST, k_multi=1)
        assert with_multi.optimized_cost <= no_multi.optimized_cost
        assert with_multi.speedup_percent > no_multi.speedup_percent

    def test_stats_populated(self, shared_matmul_graph):
        result = optimize(shared_matmul_graph, config=FAST)
        stats = result.stats
        assert stats.exploration_seconds > 0
        assert stats.extraction_seconds > 0
        assert stats.total_seconds >= stats.exploration_seconds
        assert stats.num_enodes > 0
        assert stats.stop_reason in ("saturated", "iteration_limit", "node_limit", "time_limit")
        assert result.summary()

    def test_explore_and_extract_separately(self, shared_matmul_graph):
        session = TensatOptimizer(config=FAST).session(shared_matmul_graph)
        report = session.explore()
        assert report.num_iterations >= 1
        extraction = session.extract()
        assert extraction.expr is not None

    def test_custom_rules_subset(self, shared_matmul_graph):
        rules = default_ruleset().filter(include_tags=["fusion"])
        result = TensatOptimizer(rules=rules, config=FAST).optimize(shared_matmul_graph)
        # Fusion-only rules cannot merge the two matmuls.
        assert result.optimized_cost == pytest.approx(result.original_cost)

    def test_matches_backtracking_on_small_graph(self, nasrnn_like_graph):
        """On a small graph both searches should find the same optimum (paper Table 1 shape)."""
        cm = AnalyticCostModel()
        tensat = optimize(nasrnn_like_graph, cost_model=cm, config=FAST)
        taso = BacktrackingSearch(cm, budget=40, time_limit=120).optimize(nasrnn_like_graph)
        assert tensat.optimized_cost <= taso.optimized_cost + 1e-9

    def test_numerical_equivalence_flag_raises_on_violation(self, shared_matmul_graph):
        # With verification on, a successful run simply passes.
        result = optimize(shared_matmul_graph, config=FAST, verify_numerically=True)
        assert outputs_allclose(
            execute_graph(result.original), execute_graph(result.optimized)
        )
