"""Tests for the optional backoff rule scheduler in the exploration runner."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import Runner, RunnerLimits, StopReason
from repro.models import build_model
from repro.core import TensatConfig, TensatOptimizer
from repro.costs import AnalyticCostModel


def explosive_rules():
    """One harmless rule plus one whose match count grows every iteration."""
    return [
        Rewrite.parse("rename", "(h ?x)", "(h2 ?x)"),
        Rewrite.parse("grow", "(f ?x)", "(f (g ?x))"),
    ]


class TestBackoffScheduler:
    def test_invalid_scheduler_rejected(self):
        eg = EGraph()
        eg.add_term("(f a)")
        with pytest.raises(ValueError):
            Runner(eg, limits=RunnerLimits(scheduler="adaptive"))

    def test_backoff_bans_explosive_rule(self):
        eg = EGraph()
        eg.add_term("(noop (f a) (h b))")
        limits = RunnerLimits(iter_limit=6, scheduler="backoff", match_limit=2, ban_length=2)
        runner = Runner(eg, rewrites=explosive_rules(), limits=limits)
        report = runner.run()
        assert any(it.n_rules_banned > 0 for it in report.iterations)

    def test_backoff_produces_smaller_egraph_than_simple(self):
        def run(scheduler):
            eg = EGraph()
            eg.add_term("(f a)")
            limits = RunnerLimits(
                iter_limit=8, node_limit=10_000, scheduler=scheduler, match_limit=2, ban_length=8
            )
            Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
            return eg.num_enodes

        assert run("backoff") <= run("simple")

    def test_banned_iteration_is_not_reported_as_saturation(self):
        eg = EGraph()
        eg.add_term("(f a)")
        limits = RunnerLimits(iter_limit=4, scheduler="backoff", match_limit=0, ban_length=10)
        report = Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
        # The only rule is banned immediately and stays banned; the runner must
        # not claim saturation.
        assert report.stop_reason == StopReason.ITERATION_LIMIT

    def test_simple_scheduler_never_bans(self):
        eg = EGraph()
        eg.add_term("(f a)")
        limits = RunnerLimits(iter_limit=3, scheduler="simple", match_limit=0)
        report = Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
        assert all(it.n_rules_banned == 0 for it in report.iterations)


class TestSchedulerEndToEnd:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TensatConfig(scheduler="adaptive")

    def test_backoff_config_optimizes_model(self):
        cm = AnalyticCostModel()
        graph = build_model("nasrnn", "tiny")
        config = TensatConfig.fast().with_overrides(
            scheduler="backoff", scheduler_match_limit=100, scheduler_ban_length=3
        )
        result = TensatOptimizer(cm, config=config).optimize(graph)
        assert result.optimized_cost <= result.original_cost + 1e-12
