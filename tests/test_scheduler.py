"""Tests for the rule schedulers of the exploration pipeline."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import Runner, RunnerLimits, StopReason
from repro.egraph.scheduler import BackoffScheduler, SimpleScheduler, make_scheduler
from repro.models import build_model
from repro.core import TensatConfig, TensatOptimizer
from repro.costs import AnalyticCostModel


class TestSchedulerObjects:
    def test_factory(self):
        assert isinstance(make_scheduler("simple"), SimpleScheduler)
        backoff = make_scheduler("backoff", match_limit=7, ban_length=3)
        assert isinstance(backoff, BackoffScheduler)
        assert backoff.match_limit == 7 and backoff.ban_length == 3
        with pytest.raises(ValueError):
            make_scheduler("adaptive")

    def test_simple_never_bans(self):
        s = SimpleScheduler()
        assert not s.is_banned(0, 0)
        assert s.admit_matches(0, 0, 10 ** 9)

    def test_backoff_ban_doubles_per_offence(self):
        s = BackoffScheduler(match_limit=2, ban_length=2)
        assert s.admit_matches(0, 0, 2)  # at the limit: admitted
        assert not s.admit_matches(0, 1, 3)  # over: banned for 2 iterations
        assert s.is_banned(0, 2) and not s.is_banned(0, 3)
        # Second offence: threshold and ban length double.
        assert s.admit_matches(0, 4, 4)
        assert not s.admit_matches(0, 5, 5)
        assert s.is_banned(0, 8) and not s.is_banned(0, 9)


def explosive_rules():
    """One harmless rule plus one whose match count grows every iteration."""
    return [
        Rewrite.parse("rename", "(h ?x)", "(h2 ?x)"),
        Rewrite.parse("grow", "(f ?x)", "(f (g ?x))"),
    ]


class TestBackoffScheduler:
    def test_invalid_scheduler_rejected(self):
        eg = EGraph()
        eg.add_term("(f a)")
        with pytest.raises(ValueError):
            Runner(eg, limits=RunnerLimits(scheduler="adaptive"))

    def test_backoff_bans_explosive_rule(self):
        eg = EGraph()
        eg.add_term("(noop (f a) (h b))")
        limits = RunnerLimits(iter_limit=6, scheduler="backoff", match_limit=2, ban_length=2)
        runner = Runner(eg, rewrites=explosive_rules(), limits=limits)
        report = runner.run()
        assert any(it.n_rules_banned > 0 for it in report.iterations)

    def test_backoff_produces_smaller_egraph_than_simple(self):
        def run(scheduler):
            eg = EGraph()
            eg.add_term("(f a)")
            limits = RunnerLimits(
                iter_limit=8, node_limit=10_000, scheduler=scheduler, match_limit=2, ban_length=8
            )
            Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
            return eg.num_enodes

        assert run("backoff") <= run("simple")

    def test_banned_iteration_is_not_reported_as_saturation(self):
        eg = EGraph()
        eg.add_term("(f a)")
        limits = RunnerLimits(iter_limit=4, scheduler="backoff", match_limit=0, ban_length=10)
        report = Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
        # The only rule is banned immediately and stays banned; the runner must
        # not claim saturation.
        assert report.stop_reason == StopReason.ITERATION_LIMIT

    def test_simple_scheduler_never_bans(self):
        eg = EGraph()
        eg.add_term("(f a)")
        limits = RunnerLimits(iter_limit=3, scheduler="simple", match_limit=0)
        report = Runner(eg, rewrites=[Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")], limits=limits).run()
        assert all(it.n_rules_banned == 0 for it in report.iterations)

    @pytest.mark.parametrize("matcher,search_mode", [
        ("naive", "trie"), ("vm", "per-rule"), ("vm", "trie"),
    ])
    def test_backoff_ban_lift_identical_across_matchers(self, matcher, search_mode):
        """Regression: the ban-lift path used to reset the rule's compiled
        incremental matcher unconditionally, even under matcher="naive".
        Every matcher must survive a full ban/lift cycle and walk the exact
        trajectory the naive reference walks."""

        def run(m, sm):
            eg = EGraph()
            eg.add_term("(noop (f a) (h b))")
            limits = RunnerLimits(
                iter_limit=8, scheduler="backoff", match_limit=2, ban_length=2,
                matcher=m, search_mode=sm,
            )
            runner = Runner(eg, rewrites=explosive_rules(), limits=limits)
            report = runner.run()
            return (
                report.stop_reason,
                tuple(it.n_matches for it in report.iterations),
                tuple(it.n_applied for it in report.iterations),
                tuple(it.n_rules_banned for it in report.iterations),
                eg.num_enodes,
            )

        golden = run("naive", "per-rule")
        assert any(banned > 0 for banned in golden[3]), "test needs a real ban"
        assert run(matcher, search_mode) == golden


class TestSchedulerEndToEnd:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TensatConfig(scheduler="adaptive")

    def test_backoff_config_optimizes_model(self):
        cm = AnalyticCostModel()
        graph = build_model("nasrnn", "tiny")
        config = TensatConfig.fast().with_overrides(
            scheduler="backoff", scheduler_match_limit=100, scheduler_ban_length=3
        )
        result = TensatOptimizer(cm, config=config).optimize(graph)
        assert result.optimized_cost <= result.original_cost + 1e-12
