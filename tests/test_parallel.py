"""Parallel sharded search: planner properties, executor parity, error paths.

The determinism contract under test (``docs/parallel.md``): every rule lives
in exactly one trie op bucket, each bucket is assigned to exactly one shard,
and the driver sorts every rule's final match list -- so any shard count and
any executor must walk the *bit-for-bit* trajectory of the unsharded sweep.
The golden tests here mirror ``tests/test_optimizer_golden.py``.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ConfigError, TensatConfig
from repro.core.events import PhaseTimingObserver, RecordingObserver
from repro.core.optimizer import TensatOptimizer, optimize
from repro.core.batch import optimize_many
from repro.core.registry import SCHEDULERS
from repro.egraph.machine import TrieMatcher
from repro.egraph.parallel import (
    EGraphSnapshot,
    ProcessSearchExecutor,
    SerialSearchExecutor,
    ThreadSearchExecutor,
    ensure_picklable,
    plan_shards,
)
from repro.egraph.runner import Runner, RunnerLimits
from repro.ir.convert import egraph_from_graph
from repro.models import build_model
from repro.rules.library import default_ruleset

BASE = dict(node_limit=2_000, iter_limit=5, k_multi=1, extraction="greedy")


def _golden_record(model: str, **overrides) -> dict:
    config = TensatConfig(**{**BASE, **overrides})
    graph = build_model(model, "tiny")
    result = TensatOptimizer(config=config).optimize(graph)
    report = result.runner_report
    return {
        "num_enodes": result.stats.num_enodes,
        "original_cost": result.stats.original_cost,
        "optimized_cost": result.stats.optimized_cost,
        "stop_reason": result.stats.stop_reason,
        "iterations": report.num_iterations,
        "per_iteration_matches": tuple(it.n_matches for it in report.iterations),
        "per_iteration_applied": tuple(it.n_applied for it in report.iterations),
        "per_iteration_deduped": tuple(it.n_deduped for it in report.iterations),
        "per_iteration_enodes": tuple(it.n_enodes for it in report.iterations),
    }


# --------------------------------------------------------------------- #
# Shard planner
# --------------------------------------------------------------------- #

bucket_keys = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
weight_maps = st.dictionaries(bucket_keys, st.floats(0.0, 1e6), max_size=40)


@given(weights=weight_maps, n_shards=st.integers(1, 12))
@settings(max_examples=200, deadline=None)
def test_plan_shards_partitions_exactly(weights, n_shards):
    """Every bucket lands on exactly one shard: no drops, no duplicates."""
    shards = plan_shards(weights, n_shards)
    assert len(shards) == n_shards
    flat = [key for shard in shards for key in shard]
    assert sorted(flat) == sorted(weights)  # no drop, no dup
    assert len(set(flat)) == len(flat)


def test_plan_shards_is_deterministic_and_balanced():
    weights = {f"op{i}": float(i) for i in range(20)}
    a = plan_shards(weights, 4)
    b = plan_shards(dict(reversed(list(weights.items()))), 4)
    assert a == b  # plan depends on weights, not dict order
    loads = [sum(weights[k] for k in shard) for shard in a]
    # Greedy LPT is a 4/3-approximation of the optimal makespan.
    assert max(loads) <= (4 / 3) * (sum(weights.values()) / 4) + max(weights.values())


def test_plan_shards_rejects_bad_counts():
    with pytest.raises(ValueError):
        plan_shards({"a": 1.0}, 0)


# --------------------------------------------------------------------- #
# Snapshot + executor unit behaviour
# --------------------------------------------------------------------- #


def _nasrnn_egraph():
    egraph, _root = egraph_from_graph(build_model("nasrnn", "tiny"))
    return egraph


def test_snapshot_mirrors_frozen_egraph():
    import pickle

    egraph = _nasrnn_egraph()
    snap = pickle.loads(pickle.dumps(EGraphSnapshot.freeze(egraph)))
    assert snap.is_clean() == egraph.is_clean()
    for cls in egraph.classes():
        assert snap.find(cls.id) == egraph.find(cls.id)
        assert snap[cls.id].nodes == egraph[cls.id].nodes
        for node in cls.nodes:
            assert snap.lookup(node) == egraph.lookup(node)


@pytest.mark.parametrize("executor_cls,jobs", [
    (SerialSearchExecutor, 3),
    (ThreadSearchExecutor, 2),
    (ThreadSearchExecutor, 4),
    (ProcessSearchExecutor, 2),
])
def test_executor_search_matches_inline_sweep(executor_cls, jobs):
    """Raw ``search_all`` parity per executor, including shard accounting."""
    patterns = [rw.lhs for rw in default_ruleset().rewrites]
    egraph = _nasrnn_egraph()
    base = TrieMatcher(patterns).search_all(egraph)
    executor = executor_cls(jobs)
    try:
        got = TrieMatcher(patterns).search_all(egraph, executor=executor)
        assert got == base
        shards = executor.last_shards
        assert len(shards) == jobs
        assert [s.shard for s in shards] == list(range(jobs))
        assert all(s.seconds >= 0.0 for s in shards)
    finally:
        executor.close()


def test_trie_matcher_fork_shares_trie_not_cache():
    patterns = [rw.lhs for rw in default_ruleset().rewrites]
    matcher = TrieMatcher(patterns)
    egraph = _nasrnn_egraph()
    matcher.search_all(egraph)
    fork = matcher.fork()
    assert fork.trie is matcher.trie and fork.patterns is matcher.patterns
    assert fork._cache is None and matcher._cache is not None
    assert fork.search_all(egraph) == matcher.search_all(egraph)


def test_ensure_picklable_names_the_offender():
    with pytest.raises(ConfigError, match="the broken piece"):
        ensure_picklable({"the broken piece": lambda: None}, "this test")


# --------------------------------------------------------------------- #
# Golden bit-for-bit parity (the tentpole contract)
# --------------------------------------------------------------------- #


@pytest.mark.slow
@pytest.mark.parametrize("model", ["nasrnn", "resnext"])
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_sharded_search_matches_serial_golden(model, executor):
    """jobs=1 == jobs=2 == jobs=4 bit-for-bit, per executor and model."""
    golden = _golden_record(model)
    for jobs in (2, 4):
        record = _golden_record(model, search_jobs=jobs, search_executor=executor)
        assert record == golden, f"{executor} jobs={jobs}"


@pytest.mark.slow
def test_serial_executor_matches_unsharded_golden():
    """The serial executor (sharding, no pool) is the determinism fixture."""
    golden = _golden_record("nasrnn")
    record = _golden_record("nasrnn", search_jobs=3, search_executor="serial")
    assert record == golden


@pytest.mark.slow
def test_delta_search_shards_cleanly():
    """The delta-sharding contract: incremental search stays incremental.

    Delta closures are computed on the driver (which holds the live parent
    lists) and workers only ever receive explicit candidate lists, so
    ``jobs > 1`` must neither force full searches nor change the trajectory.
    """

    def record_and_full_flags(**overrides):
        config = TensatConfig(**{**BASE, **overrides})
        from repro.core.session import OptimizationSession

        session = OptimizationSession(build_model("nasrnn", "tiny"), config=config)
        report = session.explore()
        flags = tuple(it.full_search for it in report.iterations)
        matches = tuple(it.n_matches for it in report.iterations)
        return flags, matches, report.n_enodes

    serial = record_and_full_flags(delta_matching=True)
    sharded = record_and_full_flags(delta_matching=True, search_jobs=2, search_executor="thread")
    assert sharded == serial
    # The contract is only meaningful if some iteration actually ran on a
    # delta; iteration 0 is always full, later ones must not be forced full.
    assert not all(serial[0]), "expected at least one delta-seeded iteration"


# --------------------------------------------------------------------- #
# Configuration errors
# --------------------------------------------------------------------- #


def test_config_rejects_jobs_without_trie_path():
    with pytest.raises(ConfigError, match="search_jobs > 1 requires"):
        TensatConfig(search_jobs=2, search_mode="per-rule")
    with pytest.raises(ConfigError, match="search_jobs > 1 requires"):
        TensatConfig(search_jobs=2, matcher="naive")
    with pytest.raises(ConfigError, match="search_jobs must be >= 1"):
        TensatConfig(search_jobs=0)


def test_runner_rejects_jobs_without_trie_path():
    """RunnerLimits is constructible unvalidated; Runner itself must reject."""
    egraph = _nasrnn_egraph()
    rules = default_ruleset().rewrites
    limits = RunnerLimits(search_jobs=2, search_mode="per-rule", iter_limit=1)
    with pytest.raises(ConfigError, match="search_jobs > 1 requires"):
        Runner(egraph, rewrites=rules, limits=limits)


def test_runner_rejects_unknown_executor():
    egraph = _nasrnn_egraph()
    limits = RunnerLimits(search_jobs=2, search_executor="carrier-pigeon", iter_limit=1)
    with pytest.raises(ValueError, match="unknown search executor"):
        Runner(egraph, rewrites=default_ruleset().rewrites, limits=limits)


def test_process_executor_rejects_unpicklable_component():
    """The bugfix sweep: a clear ConfigError instead of a pickle traceback.

    A user-registered scheduler holding a lambda cannot cross a process
    boundary; the Runner preflights every pluggable component it holds when
    ``search_executor="process"`` and names the offender.
    """
    from repro.egraph.scheduler import SimpleScheduler

    class LambdaScheduler(SimpleScheduler):
        def __init__(self):
            super().__init__()
            self.policy = lambda rule: True  # unpicklable on purpose

    SCHEDULERS.register("test-lambda", lambda match_limit, ban_length: LambdaScheduler())
    try:
        egraph = _nasrnn_egraph()
        limits = RunnerLimits(
            scheduler="test-lambda", search_jobs=2, search_executor="process", iter_limit=1
        )
        with pytest.raises(ConfigError, match="the rule scheduler"):
            Runner(egraph, rewrites=default_ruleset().rewrites, limits=limits)
    finally:
        SCHEDULERS.unregister("test-lambda")


def test_optimize_many_process_rejects_unpicklable_rules():
    """A lambda condition in a custom rule set fails the batch preflight."""
    rules = default_ruleset()
    rules.rewrites[0].condition = lambda egraph, match: True
    with pytest.raises(ConfigError, match="the rule set"):
        optimize_many(
            [build_model("nasrnn", "tiny")],
            rules=rules,
            config=TensatConfig(**BASE),
            jobs=2,
            executor="process",
        )


def test_optimize_many_rejects_bad_fanout_arguments():
    graphs = [build_model("nasrnn", "tiny")]
    with pytest.raises(ConfigError, match="jobs must be >= 1"):
        optimize_many(graphs, config=TensatConfig(**BASE), jobs=0)
    with pytest.raises(ConfigError, match="executor must be"):
        optimize_many(graphs, config=TensatConfig(**BASE), jobs=2, executor="fiber")
    with pytest.raises(ConfigError, match="observer"):
        optimize_many(
            graphs,
            config=TensatConfig(**BASE),
            observers=[RecordingObserver()],
            jobs=2,
            executor="process",
        )


# --------------------------------------------------------------------- #
# Stats spine
# --------------------------------------------------------------------- #


def _small_config(**overrides):
    return TensatConfig(**{**BASE, "iter_limit": 3, **overrides})


def test_search_shards_flow_through_stats_spine():
    graph = build_model("nasrnn", "tiny")
    result = optimize(graph, config=_small_config(search_jobs=2, search_executor="thread"))
    report = result.runner_report

    # IterationReport: every iteration carries one entry per shard.
    for it in report.iterations:
        assert [s["shard"] for s in it.search_shards] == [0, 1]
        assert all(s["seconds"] >= 0.0 and s["buckets"] >= 0 for s in it.search_shards)

    # RunnerReport aggregates per shard index, in index order.
    agg = report.search_shards
    assert [s["shard"] for s in agg] == [0, 1]
    for idx, row in enumerate(agg):
        assert row["buckets"] == sum(it.search_shards[idx]["buckets"] for it in report.iterations)
    assert "search_shards" in report.summary()

    # OptimizationStats --> --json payload.
    payload = result.stats.as_dict()
    assert payload["search_shards"] == agg

    # Unsharded runs keep the field empty rather than absent.
    unsharded = optimize(graph, config=_small_config())
    assert unsharded.stats.as_dict()["search_shards"] == []


def test_phase_timing_observer_reports_utilisation():
    graph = build_model("nasrnn", "tiny")
    observer = PhaseTimingObserver()
    optimize(graph, config=_small_config(search_jobs=2, search_executor="thread"), observers=[observer])
    assert set(observer.search_shard_seconds) == {0, 1}
    assert 0.0 < observer.parallel_search_utilisation <= 1.0

    unsharded = PhaseTimingObserver()
    optimize(graph, config=_small_config(), observers=[unsharded])
    assert unsharded.search_shard_seconds == {}
    assert unsharded.parallel_search_utilisation == 0.0


# --------------------------------------------------------------------- #
# Batch fan-out
# --------------------------------------------------------------------- #


@pytest.mark.slow
@pytest.mark.parametrize("executor", ["thread", "process"])
def test_optimize_many_jobs_parity_and_order(executor):
    """Fanned-out batches return jobs=1 results in submission order."""
    graphs = [build_model(m, "tiny") for m in ("nasrnn", "squeezenet", "resnext")]
    config = TensatConfig(**BASE)
    serial = optimize_many(graphs, config=config)
    fanned = optimize_many(graphs, config=config, jobs=2, executor=executor)
    assert [r.original.name for r in fanned] == [g.name for g in graphs]
    for a, b in zip(serial, fanned):
        assert a.stats.optimized_cost == b.stats.optimized_cost
        assert a.stats.num_enodes == b.stats.num_enodes
        assert a.stats.stop_reason == b.stats.stop_reason


def test_optimize_many_thread_fanout_delivers_observer_events():
    graphs = [build_model("nasrnn", "tiny"), build_model("squeezenet", "tiny")]
    observer = RecordingObserver()
    optimize_many(graphs, config=_small_config(), observers=[observer], jobs=2, executor="thread")
    phases = observer.of_kind("phase")
    # Two runs, each completing exploration/extraction/materialization.
    assert sum(1 for e in phases if e[1] == "exploration") == 2
    assert sum(1 for e in phases if e[1] == "materialization") == 2
