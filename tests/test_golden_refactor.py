"""Golden optimize trajectories pinning the operator-registry refactor.

``tests/data/golden_refactor.json`` records, for every built-in model, the
full saturation trajectory (per-iteration match/apply/dedup/e-node counts),
the extracted cost, and the canonical fingerprint of the optimized graph, as
produced *before* shape inference / cost accounting moved from if/elif
chains to the :data:`repro.ir.opspec.OPS` registry.  These tests re-run the
same configuration and require bit-for-bit identical trajectories -- any
divergence means the registry dispatch changed a verdict somewhere.
"""

import json
from pathlib import Path

import pytest

from repro.core import TensatConfig
from repro.core.optimizer import TensatOptimizer
from repro.models import build_model
from repro.service.fingerprint import graph_fingerprint

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_refactor.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.mark.slow
@pytest.mark.parametrize("model", sorted(GOLDEN["models"]))
def test_trajectory_bit_for_bit(model):
    expected = GOLDEN["models"][model]
    config = TensatConfig(**GOLDEN["config"])
    graph = build_model(model, GOLDEN["scale"])
    result = TensatOptimizer(config=config).optimize(graph)

    report = result.runner_report
    iterations = report.iterations
    assert len(iterations) == expected["iterations"]
    assert [it.n_matches for it in iterations] == expected["per_iteration_matches"]
    assert [it.n_applied for it in iterations] == expected["per_iteration_applied"]
    assert [it.n_deduped for it in iterations] == expected["per_iteration_deduped"]
    assert [it.n_enodes for it in iterations] == expected["per_iteration_enodes"]
    assert result.stats.stop_reason == expected["stop_reason"]
    assert report.n_enodes == expected["num_enodes"]
    assert result.stats.original_cost == pytest.approx(expected["original_cost"], abs=0, rel=1e-12)
    assert result.stats.optimized_cost == pytest.approx(expected["optimized_cost"], abs=0, rel=1e-12)
    assert graph_fingerprint(result.optimized) == expected["optimized_fingerprint"]
