"""Tests for GraphBuilder and TensorGraph."""

import pytest

from repro.costs import TableCostModel
from repro.ir.graph import GraphBuilder
from repro.ir.ops import Activation, OpKind, Padding
from repro.ir.tensor import ShapeError


class TestBuilderBasics:
    def test_input_and_weight_shapes(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        assert b.shape(x) == (8, 64)
        assert b.shape(w) == (64, 32)
        assert b.data(w).from_weights
        assert not b.data(x).from_weights

    def test_hash_consing_dedupes_identical_nodes(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        m1 = b.matmul(x, w)
        m2 = b.matmul(x, w)
        assert m1 == m2

    def test_literal_nodes_are_shared(self):
        b = GraphBuilder()
        assert b.num(1) == b.num(1)
        assert b.num(1) != b.num(2)

    def test_shape_error_at_construction(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (63, 32))
        with pytest.raises(ShapeError):
            b.matmul(x, w)

    def test_matmul_activation_encoded_as_first_input(self):
        b = GraphBuilder()
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        m = b.matmul(x, w, activation=Activation.RELU)
        g = b.finish(outputs=[m])
        node = g.nodes[m]
        act_node = g.nodes[node.inputs[0]]
        assert act_node.op == OpKind.NUM and act_node.value == 1

    def test_conv_and_pool_shapes(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 14, 14))
        w = b.weight("w", (16, 8, 3, 3))
        c = b.conv(x, w, stride=(2, 2))
        p = b.poolmax(c, (2, 2), (2, 2), Padding.VALID)
        assert b.shape(c) == (1, 16, 7, 7)
        assert b.shape(p) == (1, 16, 3, 3)

    def test_split_returns_two_pieces(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        y = b.input("y", (4, 6))
        cat = b.concat(1, x, y)
        s0, s1 = b.split(1, cat)
        assert b.shape(s0) == (4, 8)
        assert b.shape(s1) == (4, 6)

    def test_split_many(self):
        b = GraphBuilder()
        xs = [b.input(f"x{i}", (4, 2 + i)) for i in range(3)]
        cat = b.concat(1, *xs)
        pieces = b.split_many(1, cat, 3)
        assert [b.shape(p)[1] for p in pieces] == [2, 3, 4]

    def test_activation_helper(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        assert b.activation(x, Activation.NONE) == x
        assert b.shape(b.activation(x, Activation.TANH)) == (4, 8)

    def test_concat_arity_bounds(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        with pytest.raises(ValueError):
            b.concat(1, x)

    def test_add_symbol(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        r = b.add_symbol("relu", [x])
        assert b.shape(r) == (4, 8)

    def test_finish_requires_nodes(self):
        with pytest.raises(ValueError):
            GraphBuilder().finish()

    def test_finish_defaults_to_last_node(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        b.relu(x)
        g = b.finish()
        assert len(g.outputs) == 1


class TestTensorGraph:
    def build(self):
        b = GraphBuilder("g")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        m = b.matmul(x, w)
        r = b.relu(m)
        return b.finish(outputs=[r])

    def test_topological_invariant(self):
        g = self.build()
        for node in g.nodes:
            assert all(c < node.id for c in node.inputs)

    def test_compute_nodes_and_histogram(self):
        g = self.build()
        assert g.num_compute_nodes() == 2
        assert g.op_histogram() == {"matmul": 1, "relu": 1}

    def test_total_cost_uses_cost_model(self):
        g = self.build()
        cm = TableCostModel({"matmul": 2.0, "relu": 0.5})
        assert g.total_cost(cm) == pytest.approx(2.5)

    def test_consumers(self):
        g = self.build()
        consumers = g.consumers()
        matmul_id = next(n.id for n in g.nodes if n.op == OpKind.MATMUL)
        relu_id = next(n.id for n in g.nodes if n.op == OpKind.RELU)
        assert consumers[matmul_id] == [relu_id]

    def test_signature_is_stable(self):
        assert self.build().signature() == self.build().signature()

    def test_signature_differs_for_different_graphs(self):
        g1 = self.build()
        b = GraphBuilder("g")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        g2 = b.finish(outputs=[b.matmul(x, w)])
        assert g1.signature() != g2.signature()

    def test_pruned_removes_dead_nodes(self):
        b = GraphBuilder("g")
        x = b.input("x", (8, 64))
        w = b.weight("w", (64, 32))
        live = b.matmul(x, w)
        b.relu(live)  # dead: not an output
        g = b.finish(outputs=[live])
        pruned = g.pruned()
        assert pruned.num_compute_nodes() == 1
        assert len(pruned) < len(g)

    def test_input_and_weight_node_lists(self):
        g = self.build()
        assert [n.op for n in g.input_nodes()] == [OpKind.INPUT]
        assert [n.op for n in g.weight_nodes()] == [OpKind.WEIGHT]

    def test_describe_mentions_ops(self):
        assert "matmul" in self.build().describe()
