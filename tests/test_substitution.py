"""Tests for concrete-graph matching and substitution (the sequential baselines' engine)."""

import pytest

from repro.backend import execute_graph, outputs_allclose
from repro.costs import AnalyticCostModel
from repro.ir.graph import GraphBuilder
from repro.ir.validate import validate_graph
from repro.rules import default_ruleset
from repro.search.substitution import apply_to_graph, find_graph_matches


def fuse_graph():
    b = GraphBuilder("fuse")
    x = b.input("x", (8, 64))
    w = b.weight("w", (64, 32))
    return b.finish(outputs=[b.relu(b.matmul(x, w))])


def shared_matmul_graph():
    b = GraphBuilder("pair")
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, 128))
    w2 = b.weight("w2", (64, 96))
    return b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])


RULES = default_ruleset()


class TestMatching:
    def test_single_pattern_match_found(self):
        g = fuse_graph()
        rule = RULES.get("fuse-matmul-relu").rule
        matches = find_graph_matches(g, rule)
        assert len(matches) == 1
        assert matches[0].roots[0] == g.outputs[0]

    def test_condition_respected_on_graphs(self):
        g = fuse_graph()
        # The reverse rule (unfuse) matches nothing here: no fused matmul yet.
        rule = RULES.get("fuse-matmul-relu-rev").rule
        assert find_graph_matches(g, rule) == []

    def test_multi_pattern_match_on_graph(self):
        g = shared_matmul_graph()
        rule = RULES.get("matmul-merge-shared-lhs").rule
        matches = find_graph_matches(g, rule)
        assert len(matches) == 2  # the two orderings of the pair
        assert all(len(m.roots) == 2 for m in matches)

    def test_max_matches_cap(self):
        g = shared_matmul_graph()
        rule = RULES.get("matmul-merge-shared-lhs").rule
        assert len(find_graph_matches(g, rule, max_matches=1)) == 1


class TestApplication:
    def test_fusion_substitution_preserves_semantics(self):
        g = fuse_graph()
        rule = RULES.get("fuse-matmul-relu").rule
        match = find_graph_matches(g, rule)[0]
        g2 = apply_to_graph(g, rule, match)
        assert g2 is not None
        validate_graph(g2)
        assert "relu" not in g2.op_histogram()
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_multi_pattern_substitution_preserves_semantics(self):
        g = shared_matmul_graph()
        rule = RULES.get("matmul-merge-shared-lhs").rule
        match = find_graph_matches(g, rule)[0]
        g2 = apply_to_graph(g, rule, match)
        assert g2 is not None
        validate_graph(g2)
        assert g2.op_histogram().get("matmul") == 1
        assert outputs_allclose(execute_graph(g), execute_graph(g2))

    def test_dead_nodes_are_pruned(self):
        g = fuse_graph()
        rule = RULES.get("fuse-matmul-relu").rule
        match = find_graph_matches(g, rule)[0]
        g2 = apply_to_graph(g, rule, match)
        # The unfused matmul and the relu disappear entirely.
        assert g2.num_compute_nodes() == 1

    def test_substitution_lowers_cost_for_merge(self):
        cm = AnalyticCostModel()
        g = shared_matmul_graph()
        rule = RULES.get("matmul-merge-shared-lhs").rule
        match = find_graph_matches(g, rule)[0]
        g2 = apply_to_graph(g, rule, match)
        assert cm.graph_cost(g2) < cm.graph_cost(g)

    def test_application_is_non_destructive(self):
        g = fuse_graph()
        before = g.signature()
        rule = RULES.get("fuse-matmul-relu").rule
        match = find_graph_matches(g, rule)[0]
        apply_to_graph(g, rule, match)
        assert g.signature() == before
