"""Tests for TensatConfig and OptimizationStats."""

import pytest

from repro.core import OptimizationStats, TensatConfig


class TestTensatConfig:
    def test_paper_defaults(self):
        cfg = TensatConfig.paper_defaults()
        assert cfg.node_limit == 50_000
        assert cfg.iter_limit == 15
        assert cfg.k_multi == 1
        assert cfg.extraction == "ilp"
        assert cfg.cycle_filter == "efficient"
        assert not cfg.ilp_cycle_constraints

    def test_fast_preset_is_smaller(self):
        fast = TensatConfig.fast()
        assert fast.node_limit < TensatConfig().node_limit

    def test_with_overrides(self):
        cfg = TensatConfig().with_overrides(k_multi=3, extraction="greedy")
        assert cfg.k_multi == 3
        assert cfg.extraction == "greedy"
        # original untouched (frozen dataclass)
        assert TensatConfig().k_multi == 1

    def test_invalid_extraction_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(extraction="magic")

    def test_invalid_cycle_filter_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(cycle_filter="sometimes")

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(ilp_backend="gurobi")

    def test_invalid_engine_knobs_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(matcher="regex")
        with pytest.raises(ValueError):
            TensatConfig(search_mode="hash")
        with pytest.raises(ValueError):
            TensatConfig(scheduler="adaptive")

    def test_engine_defaults(self):
        cfg = TensatConfig()
        assert cfg.matcher == "vm"
        assert cfg.search_mode == "trie"
        assert cfg.scheduler == "simple"
        assert cfg.delta_matching

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(node_limit=0)
        with pytest.raises(ValueError):
            TensatConfig(iter_limit=0)
        with pytest.raises(ValueError):
            TensatConfig(k_multi=-1)

    def test_no_cycle_handling_at_all_is_rejected(self):
        # cycle_filter="none" + ILP without cycle constraints could extract a cyclic graph.
        with pytest.raises(ValueError):
            TensatConfig(cycle_filter="none", extraction="ilp", ilp_cycle_constraints=False)

    def test_none_filter_with_cycle_constraints_is_allowed(self):
        cfg = TensatConfig(cycle_filter="none", ilp_cycle_constraints=True)
        assert cfg.cycle_filter == "none"


class TestOptimizationStats:
    def test_speedup_percent(self):
        stats = OptimizationStats(original_cost=2.0, optimized_cost=1.0)
        assert stats.speedup_percent == pytest.approx(100.0)

    def test_speedup_zero_when_no_cost(self):
        assert OptimizationStats().speedup_percent == 0.0

    def test_as_dict_keys(self):
        stats = OptimizationStats(original_cost=2.0, optimized_cost=1.0, stop_reason="saturated")
        d = stats.as_dict()
        assert d["stop_reason"] == "saturated"
        assert d["speedup_percent"] == pytest.approx(100.0)

    def test_as_dict_phase_breakdown(self):
        stats = OptimizationStats(
            exploration_seconds=1.0,
            search_seconds=0.5,
            apply_seconds=0.3,
            rebuild_seconds=0.1,
        )
        d = stats.as_dict()
        assert d["search_seconds"] == pytest.approx(0.5)
        assert d["apply_seconds"] == pytest.approx(0.3)
        assert d["rebuild_seconds"] == pytest.approx(0.1)
