"""Tests for rewrite-rule preconditions (shape checking)."""

import pytest

from repro.egraph.ematch import Match, search_pattern
from repro.egraph.pattern import Pattern
from repro.ir.convert import egraph_from_graph
from repro.ir.graph import GraphBuilder
from repro.rules.conditions import (
    all_of,
    conv_not_grouped,
    enlarge_compatible,
    pattern_data,
    targets_shape_valid,
    var_is_int,
    var_rank_is,
    var_shape_axis_equal,
)
from repro.ir.tensor import ShapeError


def matmul_pair_graph(cols1=32, cols2=48):
    b = GraphBuilder()
    x = b.input("x", (8, 64))
    w1 = b.weight("w1", (64, cols1))
    w2 = b.weight("w2", (64, cols2))
    return b.finish(outputs=[b.matmul(x, w1), b.matmul(x, w2)])


def matmul_pair_egraph(cols1=32, cols2=48):
    return egraph_from_graph(matmul_pair_graph(cols1, cols2))


def match_for(egraph, pattern_text):
    matches = search_pattern(egraph, Pattern.parse(pattern_text))
    assert matches, f"expected a match for {pattern_text}"
    return matches[0]


class TestPatternData:
    def test_infers_target_shape(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul 0 ?x ?w1)")
        data = pattern_data(eg, Pattern.parse("(matmul 0 ?x ?w1)"), m.subst)
        assert data.shape == (8, 32) or data.shape == (8, 48)

    def test_raises_on_ill_typed_target(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul 0 ?x ?w1)")
        with pytest.raises(ShapeError):
            # ?w1 @ ?x has incompatible inner dimensions.
            pattern_data(eg, Pattern.parse("(matmul 0 ?w1 ?x)"), m.subst)

    def test_unbound_variable_raises(self):
        eg, _ = matmul_pair_egraph()
        with pytest.raises(ShapeError):
            pattern_data(eg, Pattern.parse("?missing"), {})


class TestConditions:
    def test_targets_shape_valid_accepts_good_target(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul 0 ?x ?w1)")
        cond = targets_shape_valid([Pattern.parse("(matmul 1 ?x ?w1)")])
        assert cond(eg, m)

    def test_targets_shape_valid_rejects_bad_target(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul 0 ?x ?w1)")
        cond = targets_shape_valid([Pattern.parse("(ewadd ?x ?w1)")])
        assert not cond(eg, m)

    def test_var_is_int(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul ?act ?x ?w1)")
        assert var_is_int("act")(eg, m)
        assert var_is_int("act", 0)(eg, m)
        assert not var_is_int("act", 1)(eg, m)
        assert not var_is_int("x")(eg, m)

    def test_var_rank_is(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul ?act ?x ?w1)")
        assert var_rank_is("x", 2)(eg, m)
        assert not var_rank_is("x", 3)(eg, m)

    def test_var_shape_axis_equal(self):
        eg, _ = matmul_pair_egraph(cols1=32, cols2=32)
        m = match_for(eg, "(noop (matmul 0 ?x ?w1) (matmul 0 ?x ?w2))")
        assert var_shape_axis_equal("w1", "w2", 1)(eg, m)
        assert var_shape_axis_equal("w1", "w2", 0)(eg, m)

    def test_var_shape_axis_unequal(self):
        eg, _ = matmul_pair_egraph(cols1=32, cols2=48)
        m = match_for(eg, "(noop (matmul 0 ?x ?w1) (matmul 0 ?x ?w2))")
        assert not var_shape_axis_equal("w1", "w2", 1)(eg, m)

    def test_all_of(self):
        eg, _ = matmul_pair_egraph()
        m = match_for(eg, "(matmul ?act ?x ?w1)")
        assert all_of(var_is_int("act"), var_rank_is("x", 2))(eg, m)
        assert not all_of(var_is_int("act"), var_rank_is("x", 3))(eg, m)


class TestConvConditions:
    def conv_egraph(self, in_channels=8, weight_in=8, k1=1, k2=3):
        b = GraphBuilder()
        x = b.input("x", (1, in_channels, 10, 10))
        w1 = b.weight("w1", (6, weight_in, k1, k1))
        w2 = b.weight("w2", (10, weight_in, k2, k2))
        g = b.finish(outputs=[b.conv(x, w1), b.conv(x, w2)])
        return egraph_from_graph(g)

    def test_conv_not_grouped_true_for_normal_conv(self):
        eg, _ = self.conv_egraph()
        m = match_for(eg, "(conv 1 1 0 0 ?x ?w1)")
        assert conv_not_grouped("x", "w1")(eg, m)

    def test_conv_not_grouped_false_for_grouped(self):
        eg, _ = self.conv_egraph(in_channels=8, weight_in=4, k1=3, k2=3)
        m = match_for(eg, "(conv 1 1 0 0 ?x ?w1)")
        assert not conv_not_grouped("x", "w1")(eg, m)

    def test_enlarge_compatible(self):
        eg, _ = self.conv_egraph(k1=1, k2=3)
        m = match_for(eg, "(noop (conv 1 1 0 0 ?x ?w1) (conv 1 1 0 0 ?x ?w2))")
        assert enlarge_compatible("w1", "w2")(eg, m)
        # Same-size kernels are excluded (handled by the plain merge rule).
        assert not enlarge_compatible("w1", "w1")(eg, m)
        # Reverse direction (shrinking) is excluded.
        assert not enlarge_compatible("w2", "w1")(eg, m)

    def test_enlarge_incompatible_even_target(self):
        eg, _ = self.conv_egraph(k1=1, k2=4)
        m = match_for(eg, "(noop (conv 1 1 0 0 ?x ?w1) (conv 1 1 0 0 ?x ?w2))")
        assert not enlarge_compatible("w1", "w2")(eg, m)


class TestCompiledSpecParity:
    """The compiled condition programs must agree with on-demand inference.

    ``egraph_from_graph(..., shape_analysis=True)`` advertises the interned
    per-class facts, so ``targets_shape_valid`` takes its compiled path;
    ``shape_analysis=False`` forces the on-demand inference spec path.  Both
    e-graphs are built from the same graph, so matches carry identical
    substitutions and every verdict must coincide.
    """

    PATTERNS = [
        "(matmul 0 ?x ?w1)",
        "(matmul ?act ?x ?w1)",
        "(noop (matmul 0 ?x ?w1) (matmul 0 ?x ?w2))",
    ]
    TARGETS = [
        ["(matmul 1 ?x ?w1)"],
        ["(ewadd ?x ?w1)"],
        ["(matmul 0 ?x ?w1)", "(matmul 0 ?x ?w2)"],
        ["(matmul 0 ?x (ewadd ?w1 ?w2))"],
        ["(ewadd (matmul 0 ?x ?w1) (matmul 0 ?x ?w2))"],
        ["(matmul 0 ?x ?unbound)"],
    ]

    @pytest.mark.parametrize("cols", [(32, 48), (32, 32)])
    def test_verdicts_match_on_every_binding(self, cols):
        g = matmul_pair_graph(*cols)
        compiled_eg, _ = egraph_from_graph(g, shape_analysis=True)
        spec_eg, _ = egraph_from_graph(g, shape_analysis=False)
        assert compiled_eg.analysis.compiled_conditions
        assert not spec_eg.analysis.compiled_conditions
        checked = 0
        for pattern_text in self.PATTERNS:
            pattern = Pattern.parse(pattern_text)
            compiled_matches = search_pattern(compiled_eg, pattern)
            spec_matches = search_pattern(spec_eg, pattern)
            assert [m.subst for m in compiled_matches] == [m.subst for m in spec_matches]
            for targets in self.TARGETS:
                cond = targets_shape_valid([Pattern.parse(t) for t in targets])
                for cm, sm in zip(compiled_matches, spec_matches):
                    assert cond(compiled_eg, cm) == cond(spec_eg, sm), (
                        f"compiled/spec divergence for {targets} on {cm.subst}"
                    )
                    checked += 1
        assert checked > 0

    def test_compiled_memo_reused_across_bindings(self):
        # The per-instruction memo is keyed on interned child fact ids, so a
        # second binding with the same operand facts is a pure lookup.
        eg, _ = matmul_pair_egraph(cols1=32, cols2=32)
        m = match_for(eg, "(matmul 0 ?x ?w1)")
        cond = targets_shape_valid([Pattern.parse("(matmul 1 ?x ?w1)")])
        assert cond(eg, m)
        op_memos = [instr[3] for instr in cond._instrs if instr[1] is not None]
        assert op_memos and all(len(memo) == 1 for memo in op_memos)
        assert cond(eg, m)
        assert all(len(memo) == 1 for memo in op_memos)

    def test_shared_subterms_compile_to_one_slot(self):
        cond = targets_shape_valid(
            [
                Pattern.parse("(ewadd (matmul 0 ?x ?w1) (matmul 0 ?x ?w1))"),
                Pattern.parse("(matmul 0 ?x ?w1)"),
            ]
        )
        # ?x, ?w1, (matmul 0 ?x ?w1), the literal 0, and the ewadd: the
        # repeated matmul subterm dedups to a single instruction slot.
        ops = [instr[1] for instr in cond._instrs if instr[1] is not None]
        assert ops.count("matmul") == 1
