"""Tests for TensorData and tensor identifiers."""

import pytest

from repro.ir.tensor import (
    DataKind,
    ShapeError,
    TensorData,
    format_identifier,
    parse_identifier,
)


class TestConstructors:
    def test_tensor(self):
        t = TensorData.tensor((2, 3))
        assert t.kind == DataKind.TENSOR
        assert t.shape == (2, 3)
        assert t.is_tensor and t.is_valid

    def test_integer(self):
        t = TensorData.integer(3)
        assert t.kind == DataKind.INT
        assert t.value == 3

    def test_string(self):
        t = TensorData.string("0 2 1 3")
        assert t.kind == DataKind.STRING
        assert t.value == "0 2 1 3"

    def test_tuple(self):
        t = TensorData.tuple_of((TensorData.tensor((2,)), TensorData.tensor((3,))))
        assert t.kind == DataKind.TUPLE
        assert len(t.parts) == 2

    def test_invalid(self):
        t = TensorData.invalid("bad shapes")
        assert not t.is_valid


class TestQueries:
    def test_num_elements(self):
        assert TensorData.tensor((2, 3, 4)).num_elements == 24
        assert TensorData.tensor(()).num_elements == 1

    def test_rank(self):
        assert TensorData.tensor((1, 2, 3)).rank == 3

    def test_expect_tensor_raises_on_int(self):
        with pytest.raises(ShapeError):
            TensorData.integer(1).expect_tensor()

    def test_expect_int_raises_on_tensor(self):
        with pytest.raises(ShapeError):
            TensorData.tensor((2,)).expect_int()

    def test_expect_string(self):
        assert TensorData.string("x").expect_string() == "x"
        with pytest.raises(ShapeError):
            TensorData.integer(1).expect_string()


class TestSplitRecords:
    def test_with_split_records_sizes(self):
        t = TensorData.tensor((2, 10)).with_split(1, (4, 6))
        assert t.split_sizes_for_axis(1) == (4, 6)
        assert t.split_sizes_for_axis(0) is None

    def test_with_split_overwrites_same_axis(self):
        t = TensorData.tensor((2, 10)).with_split(1, (4, 6)).with_split(1, (2, 8))
        assert t.split_sizes_for_axis(1) == (2, 8)

    def test_without_splits(self):
        t = TensorData.tensor((2, 10)).with_split(1, (4, 6)).without_splits()
        assert t.split_sizes_for_axis(1) is None

    def test_from_weights_preserved_by_with_split(self):
        t = TensorData.tensor((2, 10), from_weights=True).with_split(1, (5, 5))
        assert t.from_weights

    def test_with_from_weights(self):
        t = TensorData.tensor((2, 10)).with_from_weights(True)
        assert t.from_weights


class TestIdentifiers:
    def test_roundtrip(self):
        ident = format_identifier("conv1_w", (64, 3, 7, 7))
        name, shape = parse_identifier(ident)
        assert name == "conv1_w"
        assert shape == (64, 3, 7, 7)

    def test_parse_requires_at(self):
        with pytest.raises(ShapeError):
            parse_identifier("no_shape_here")

    def test_parse_rejects_bad_dims(self):
        with pytest.raises(ShapeError):
            parse_identifier("x@1 two 3")

    def test_parse_rejects_nonpositive_dims(self):
        with pytest.raises(ShapeError):
            parse_identifier("x@4 0")

    def test_parse_rejects_empty_name(self):
        with pytest.raises(ShapeError):
            parse_identifier("@4 4")

    def test_str_forms(self):
        assert str(TensorData.tensor((2, 3))) == "T[2, 3]"
        assert "int" in str(TensorData.integer(5))
        assert "invalid" in str(TensorData.invalid("x"))
