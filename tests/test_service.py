"""Tests for the optimization service: cache, config, daemon round-trips.

The load-bearing guarantee is cache parity: a cache-hit response must decode
to a graph and costs bit-identical to a direct ``TensatOptimizer.optimize()``
run under the same configuration (the cache stores serialized results, so
any divergence would mean the service returns *different answers* depending
on traffic history).
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.core.config import TensatConfig
from repro.core.optimizer import optimize
from repro.ir.graph import GraphBuilder
from repro.ir.serialize import graph_to_doc
from repro.models import build_model
from repro.service import (
    CachedResult,
    OptimizationService,
    ResultCache,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    parse_overrides,
)
from repro.service.server import RequestError

#: The profile the service defaults to; the parity tests pin against it.
FAST = TensatConfig.fast()


def small_graph(name: str = "g", scale: int = 8):
    b = GraphBuilder(name)
    x = b.input("x", (scale, scale))
    w = b.weight("w", (scale, scale))
    return b.finish(outputs=[b.relu(b.matmul(x, w))])


def handle(service: OptimizationService, payload):
    return asyncio.run(service.handle(payload))


# --------------------------------------------------------------------- #
# ResultCache
# --------------------------------------------------------------------- #


def entry(tag: str) -> CachedResult:
    return CachedResult(graph_json=tag, stats={}, original_cost=1.0, optimized_cost=0.5)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", entry("A"))
        assert cache.get("a").graph_json == "A"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "capacity": 2,
        }

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", entry("A"))
        cache.put("b", entry("B"))
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", entry("C"))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_put_same_key_updates_without_eviction(self):
        cache = ResultCache(capacity=1)
        cache.put("a", entry("A"))
        cache.put("a", entry("A2"))
        assert cache.get("a").graph_json == "A2"
        assert cache.stats()["evictions"] == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


# --------------------------------------------------------------------- #
# Override parsing / config resolution
# --------------------------------------------------------------------- #


class TestParseOverrides:
    def test_types_decoded(self):
        assert parse_overrides(["iter_limit=3", "alpha=1.5", "flag=true", "x=none", "s=greedy"]) == {
            "iter_limit": 3,
            "alpha": 1.5,
            "flag": True,
            "x": None,
            "s": "greedy",
        }

    def test_malformed_pair_rejected(self):
        with pytest.raises(ValueError, match="KEY=VALUE"):
            parse_overrides(["iter_limit"])


class TestResolveConfig:
    def test_no_overrides_returns_base(self):
        service = OptimizationService()
        assert service.resolve_config(None) is service.base_config
        assert service.resolve_config({}) is service.base_config

    def test_overrides_applied_with_coercion(self):
        service = OptimizationService()
        config = service.resolve_config({"iter_limit": "3", "k_multi": 0})
        assert config.iter_limit == 3 and config.k_multi == 0

    def test_unknown_field_is_typed_config_error(self):
        service = OptimizationService()
        with pytest.raises(RequestError, match="unknown config field 'warp_speed'") as info:
            service.resolve_config({"warp_speed": 9})
        assert info.value.code == "config"

    def test_bad_value_type_is_typed_config_error(self):
        service = OptimizationService()
        with pytest.raises(RequestError) as info:
            service.resolve_config({"iter_limit": "many"})
        assert info.value.code == "config"

    def test_registry_validation_runs(self):
        # Unknown extractor name: must surface as a typed config error from
        # the registry check, not a raw ConfigError leaking to the transport.
        service = OptimizationService()
        with pytest.raises(RequestError) as info:
            service.resolve_config({"extraction": "quantum"})
        assert info.value.code == "config"
        assert "quantum" in str(info.value)


class TestServiceConfig:
    def test_knobs_validated(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ValueError):
            ServiceConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            ServiceConfig(request_timeout=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_capacity=0)


# --------------------------------------------------------------------- #
# Request core (no sockets)
# --------------------------------------------------------------------- #


class TestRequestCore:
    def test_ping_and_unknown_op(self):
        service = OptimizationService()
        assert handle(service, {"op": "ping"})["ok"] is True
        response = handle(service, {"op": "teleport"})
        assert response["ok"] is False and response["error"]["type"] == "protocol"

    def test_non_object_payload(self):
        response = handle(OptimizationService(), [1, 2])
        assert response["ok"] is False and response["error"]["type"] == "protocol"

    def test_optimize_needs_graph(self):
        response = handle(OptimizationService(), {"op": "optimize"})
        assert response["ok"] is False and response["error"]["type"] == "protocol"

    def test_bad_graph_is_serialize_error(self):
        response = handle(
            OptimizationService(),
            {"op": "optimize", "graph": {"nodes": [{"op": "warp", "inputs": []}], "outputs": [0]}},
        )
        assert response["ok"] is False
        assert response["error"]["type"] == "serialize"
        assert "nodes[0].op" in response["error"]["message"]

    def test_bad_config_is_config_error(self):
        response = handle(
            OptimizationService(),
            {"op": "optimize", "graph": graph_to_doc(small_graph()), "config": {"nope": 1}},
        )
        assert response["ok"] is False and response["error"]["type"] == "config"

    def test_queue_full_fails_fast(self):
        service = OptimizationService(ServiceConfig(max_concurrency=1, queue_limit=0))
        service._admitted = 1  # as if one request were already running
        response = handle(service, {"op": "optimize", "graph": graph_to_doc(small_graph())})
        assert response["ok"] is False and response["error"]["type"] == "queue_full"
        service._admitted = 0
        service.close()

    def test_timeout_is_typed_and_not_cached(self):
        # Deterministic: the worker is pinned slower than the budget (a tiny
        # budget alone races a warm optimization that can finish first).
        service = OptimizationService(ServiceConfig(request_timeout=0.05))
        original = service._optimize_sync

        def slow_optimize(graph, config, enqueued_at):
            time.sleep(0.5)
            return original(graph, config, enqueued_at)

        service._optimize_sync = slow_optimize
        response = handle(service, {"op": "optimize", "graph": graph_to_doc(small_graph())})
        assert response["ok"] is False and response["error"]["type"] == "timeout"
        assert len(service.cache) == 0
        service.close()

    def test_miss_then_hit_and_counters(self):
        service = OptimizationService()
        payload = {"op": "optimize", "graph": graph_to_doc(small_graph())}
        first = handle(service, payload)
        second = handle(service, payload)
        assert first["ok"] and first["cache"] == "miss"
        assert second["ok"] and second["cache"] == "hit"
        assert second["graph"] == first["graph"]
        assert second["fingerprint"] == first["fingerprint"]
        status = service.status_payload()
        assert status["cache"]["hits"] == 1 and status["cache"]["misses"] == 1
        assert status["requests"]["optimize"] == 2
        assert status["queue"]["queue_seconds_total"] >= 0.0
        assert status["tries_compiled"] == 1
        service.close()

    def test_isomorphic_resubmission_hits(self):
        service = OptimizationService()
        first = handle(
            service, {"op": "optimize", "graph": graph_to_doc(small_graph("alpha"))}
        )
        renamed = GraphBuilder("beta")
        x = renamed.input("different_input_name", (8, 8))
        w = renamed.weight("different_weight_name", (8, 8))
        second = handle(
            service,
            {
                "op": "optimize",
                "graph": graph_to_doc(renamed.finish(outputs=[renamed.relu(renamed.matmul(x, w))])),
            },
        )
        assert first["cache"] == "miss" and second["cache"] == "hit"
        service.close()

    def test_changed_config_misses(self):
        service = OptimizationService()
        doc = graph_to_doc(small_graph())
        first = handle(service, {"op": "optimize", "graph": doc})
        second = handle(service, {"op": "optimize", "graph": doc, "config": {"k_multi": 0}})
        assert first["cache"] == "miss" and second["cache"] == "miss"
        assert first["config_digest"] != second["config_digest"]
        service.close()


# --------------------------------------------------------------------- #
# Cache parity: hit responses are bit-identical to direct optimize()
# --------------------------------------------------------------------- #


class TestCacheParity:
    @pytest.mark.parametrize("model", ["nasrnn", "resnext"])
    def test_hit_matches_direct_optimize(self, model):
        graph = build_model(model, "tiny")
        direct = optimize(graph, config=FAST)
        service = OptimizationService(base_config=FAST)
        payload = {"op": "optimize", "graph": graph_to_doc(graph)}
        miss = handle(service, payload)
        hit = handle(service, payload)
        assert miss["cache"] == "miss" and hit["cache"] == "hit"
        # Bit-identical: same serialized graph document, same costs, and the
        # hit is byte-for-byte the miss (it is served from the stored text).
        expected_doc = json.loads(json.dumps(graph_to_doc(direct.optimized), sort_keys=True))
        assert hit["graph"] == expected_doc
        assert hit["graph"] == miss["graph"]
        assert hit["original_cost_ms"] == direct.original_cost
        assert hit["optimized_cost_ms"] == direct.optimized_cost
        service.close()

    def test_changed_config_digest_misses_and_differs(self):
        graph = build_model("nasrnn", "tiny")
        service = OptimizationService(base_config=FAST)
        base = handle(service, {"op": "optimize", "graph": graph_to_doc(graph)})
        other = handle(
            service,
            {"op": "optimize", "graph": graph_to_doc(graph), "config": {"iter_limit": 2}},
        )
        assert base["cache"] == "miss" and other["cache"] == "miss"
        assert base["config_digest"] != other["config_digest"]
        # And the second key is cached independently:
        again = handle(
            service,
            {"op": "optimize", "graph": graph_to_doc(graph), "config": {"iter_limit": 2}},
        )
        assert again["cache"] == "hit" and again["graph"] == other["graph"]
        service.close()


# --------------------------------------------------------------------- #
# TCP daemon round-trips
# --------------------------------------------------------------------- #


class TestDaemon:
    def test_socket_round_trip_and_shutdown(self):
        with ServerThread(service_config=ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
            assert client.ping()
            graph = small_graph()
            first = client.optimize(graph=graph)
            second = client.optimize(graph=graph)
            assert first["cache"] == "miss" and second["cache"] == "hit"
            decoded = ServiceClient.optimized_graph(second)
            assert graph_to_doc(decoded) == first["graph"]
            status = client.status()
            assert status["cache"]["hits"] == 1
            assert status["requests"]["optimize"] == 2
            client.shutdown()

    def test_typed_error_over_the_wire(self):
        with ServerThread(service_config=ServiceConfig(port=0)) as server:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError) as info:
                client.optimize(graph_doc={"nodes": "nope", "outputs": []})
            assert info.value.type == "serialize"
            response = client.optimize(
                graph=small_graph(), config={"extraction": "quantum"}, check=False
            )
            assert response["ok"] is False and response["error"]["type"] == "config"
            client.shutdown()

    def test_connection_error_is_typed(self):
        with ServerThread(service_config=ServiceConfig(port=0)) as server:
            dead_port = server.port
        client = ServiceClient(port=dead_port, timeout=2.0)
        with pytest.raises(ServiceError) as info:
            client.ping()
        assert info.value.type == "connection"
