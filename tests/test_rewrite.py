"""Tests for single-pattern rewrites and the saturation runner."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.language import RecExpr
from repro.egraph.rewrite import Rewrite, bidirectional
from repro.egraph.runner import Runner, RunnerLimits, StopReason


class TestRewriteConstruction:
    def test_parse(self):
        rw = Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)")
        assert rw.name == "strength"
        assert rw.lhs.variables() == ["x"]

    def test_unbound_rhs_variable_rejected(self):
        with pytest.raises(ValueError):
            Rewrite.parse("bad", "(* ?x 2)", "(<< ?y 1)")

    def test_bidirectional_creates_reverse(self):
        rules = bidirectional("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")
        assert len(rules) == 2
        assert rules[1].name == "comm-rev"

    def test_bidirectional_skips_reverse_when_variables_lost(self):
        rules = bidirectional("drop", "(first ?x ?y)", "?x")
        assert len(rules) == 1


class TestApply:
    def test_apply_adds_information(self):
        eg = EGraph()
        root = eg.add_term("(* a 2)")
        rw = Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)")
        changed = rw.run(eg)
        eg.rebuild()
        assert changed == 1
        assert eg.represents(root, RecExpr.parse("(<< a 1)"))
        # Original form is still represented (non-destructive).
        assert eg.represents(root, RecExpr.parse("(* a 2)"))

    def test_apply_is_idempotent_once_saturated(self):
        eg = EGraph()
        eg.add_term("(* a 2)")
        rw = Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)")
        rw.run(eg)
        eg.rebuild()
        assert rw.run(eg) == 0

    def test_condition_blocks_application(self):
        eg = EGraph()
        eg.add_term("(* a 2)")
        rw = Rewrite.parse("never", "(* ?x 2)", "(<< ?x 1)", condition=lambda g, m: False)
        assert rw.search(eg) == []
        assert rw.run(eg) == 0

    def test_condition_receives_match(self):
        seen = []

        def cond(egraph, match):
            seen.append(match)
            return True

        eg = EGraph()
        eg.add_term("(* a 2)")
        Rewrite.parse("check", "(* ?x 2)", "(<< ?x 1)", condition=cond).search(eg)
        assert len(seen) == 1
        assert isinstance(seen[0], Match)


class TestRunner:
    def rules(self):
        return [
            Rewrite.parse("strength", "(* ?x 2)", "(<< ?x 1)"),
            Rewrite.parse("cancel", "(/ (* ?x ?y) ?y)", "?x"),
            Rewrite.parse("comm", "(* ?x ?y)", "(* ?y ?x)"),
        ]

    def test_classic_example_saturates(self):
        eg = EGraph()
        root = eg.add_term("(/ (* a 2) 2)")
        report = Runner(eg, rewrites=self.rules(), limits=RunnerLimits(iter_limit=10)).run()
        assert report.stop_reason == StopReason.SATURATED
        # The optimum (just "a") is represented.
        assert eg.represents(root, RecExpr.parse("a"))
        # And so is the shifted version, i.e. information was only added.
        assert eg.represents(root, RecExpr.parse("(/ (<< a 1) 2)"))

    def test_iteration_limit(self):
        eg = EGraph()
        eg.add_term("(f a)")
        # Keeps producing new terms (f (g ... (g a))) forever, so it never saturates.
        grow = Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")
        report = Runner(eg, rewrites=[grow], limits=RunnerLimits(iter_limit=3)).run()
        assert report.stop_reason == StopReason.ITERATION_LIMIT
        assert report.num_iterations == 3

    def test_node_limit(self):
        eg = EGraph()
        eg.add_term("(f a)")
        grow = Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")
        report = Runner(eg, rewrites=[grow], limits=RunnerLimits(iter_limit=200, node_limit=30)).run()
        assert report.stop_reason == StopReason.NODE_LIMIT
        assert eg.num_enodes >= 30

    def test_saturation_when_rule_reaches_fixpoint(self):
        eg = EGraph()
        eg.add_term("(f (f a))")
        # f(x) = f(f(x)) collapses the nest into a single self-referential class.
        collapse = Rewrite.parse("collapse", "(f ?x)", "(f (f ?x))")
        report = Runner(eg, rewrites=[collapse], limits=RunnerLimits(iter_limit=10)).run()
        assert report.stop_reason == StopReason.SATURATED

    def test_report_iteration_details(self):
        eg = EGraph()
        eg.add_term("(/ (* a 2) 2)")
        report = Runner(eg, rewrites=self.rules(), limits=RunnerLimits(iter_limit=10)).run()
        assert report.num_iterations >= 1
        first = report.iterations[0]
        assert first.n_matches >= 2
        assert first.n_applied >= 1
        assert report.summary()["stop_reason"] == "saturated"
