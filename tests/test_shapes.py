"""Tests for shape inference of every Table-2 operator."""

import pytest

from repro.ir.ops import Activation, Padding
from repro.ir.shapes import conv_output_hw, infer_symbol, matmul_output_shape, same_padding_amount
from repro.ir.tensor import DataKind, ShapeError, TensorData


def T(*shape, **kw):
    return TensorData.tensor(shape, **kw)


def I(v):
    return TensorData.integer(v)


def S(v):
    return TensorData.string(v)


class TestGeometryHelpers:
    def test_conv_same_padding_keeps_size_at_stride_one(self):
        assert conv_output_hw(14, 14, 3, 3, 1, 1, Padding.SAME) == (14, 14)

    def test_conv_same_padding_with_stride(self):
        assert conv_output_hw(13, 13, 3, 3, 2, 2, Padding.SAME) == (7, 7)

    def test_conv_valid_padding(self):
        assert conv_output_hw(14, 14, 3, 3, 1, 1, Padding.VALID) == (12, 12)

    def test_conv_empty_output_raises(self):
        with pytest.raises(ShapeError):
            conv_output_hw(2, 2, 5, 5, 1, 1, Padding.VALID)

    def test_conv_zero_stride_raises(self):
        with pytest.raises(ShapeError):
            conv_output_hw(8, 8, 3, 3, 0, 1, Padding.SAME)

    def test_same_padding_amount(self):
        before, after = same_padding_amount(14, 3, 1)
        assert (before, after) == (1, 1)

    def test_matmul_output_shapes(self):
        assert matmul_output_shape((4, 8), (8, 16)) == (4, 16)
        assert matmul_output_shape((2, 4, 8), (8, 16)) == (2, 4, 16)
        assert matmul_output_shape((2, 4, 8), (2, 8, 16)) == (2, 4, 16)

    def test_matmul_mismatch_raises(self):
        with pytest.raises(ShapeError):
            matmul_output_shape((4, 8), (9, 16))


class TestLiteralsAndIdentifiers:
    def test_integer_literal(self):
        out = infer_symbol("3", [])
        assert out.kind == DataKind.INT and out.value == 3

    def test_string_literal(self):
        out = infer_symbol("0 2 1 3", [])
        assert out.kind == DataKind.STRING

    def test_input_parses_identifier(self):
        out = infer_symbol("input", [S("x@8 64")])
        assert out.shape == (8, 64)
        assert not out.from_weights

    def test_weight_sets_from_weights(self):
        out = infer_symbol("weight", [S("w@64 32")])
        assert out.shape == (64, 32)
        assert out.from_weights


class TestElementwiseAndActivations:
    def test_ewadd_same_shapes(self):
        assert infer_symbol("ewadd", [T(4, 8), T(4, 8)]).shape == (4, 8)

    def test_ewadd_mismatch_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("ewadd", [T(4, 8), T(4, 9)])

    def test_relu_preserves_shape_and_splits(self):
        x = T(4, 8).with_split(1, (3, 5))
        out = infer_symbol("relu", [x])
        assert out.shape == (4, 8)
        assert out.split_sizes_for_axis(1) == (3, 5)

    def test_weight_only_ewadd_is_precomputable(self):
        out = infer_symbol("ewadd", [T(4, 8, from_weights=True), T(4, 8, from_weights=True)])
        assert out.from_weights

    def test_mixed_ewadd_is_not_precomputable(self):
        out = infer_symbol("ewadd", [T(4, 8, from_weights=True), T(4, 8)])
        assert not out.from_weights


class TestMatmul:
    def test_basic(self):
        out = infer_symbol("matmul", [I(0), T(4, 8), T(8, 16)])
        assert out.shape == (4, 16)

    def test_propagates_column_split_from_rhs(self):
        rhs = T(8, 16).with_split(1, (10, 6))
        out = infer_symbol("matmul", [I(0), T(4, 8), rhs])
        assert out.split_sizes_for_axis(1) == (10, 6)

    def test_propagates_row_split_from_lhs(self):
        lhs = T(4, 8).with_split(0, (1, 3))
        out = infer_symbol("matmul", [I(0), lhs, T(8, 16)])
        assert out.split_sizes_for_axis(0) == (1, 3)

    def test_bad_activation_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("matmul", [I(9), T(4, 8), T(8, 16)])

    def test_inner_dim_mismatch_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("matmul", [I(0), T(4, 8), T(9, 16)])


class TestConv:
    def conv_children(self, x, w, stride=(1, 1), padding=Padding.SAME, act=Activation.NONE):
        return [I(stride[0]), I(stride[1]), I(int(padding)), I(int(act)), x, w]

    def test_basic_same(self):
        out = infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), T(16, 8, 3, 3)))
        assert out.shape == (1, 16, 14, 14)

    def test_strided(self):
        out = infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), T(16, 8, 3, 3), stride=(2, 2)))
        assert out.shape == (1, 16, 7, 7)

    def test_grouped(self):
        out = infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), T(16, 4, 3, 3)))
        assert out.shape == (1, 16, 14, 14)

    def test_depthwise(self):
        out = infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), T(8, 1, 3, 3)))
        assert out.shape == (1, 8, 14, 14)

    def test_bad_group_divisibility_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), T(16, 3, 3, 3)))

    def test_output_channel_split_mirrors_weight_concat(self):
        w = T(24, 8, 3, 3).with_split(0, (16, 8))
        out = infer_symbol("conv", self.conv_children(T(1, 8, 14, 14), w))
        assert out.split_sizes_for_axis(1) == (16, 8)

    def test_valid_padding_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol(
                "conv",
                self.conv_children(T(1, 8, 2, 2), T(16, 8, 5, 5), padding=Padding.VALID),
            )


class TestPooling:
    def pool_children(self, x, kernel=(2, 2), stride=(2, 2), padding=Padding.VALID, act=Activation.NONE):
        return [x, I(kernel[0]), I(kernel[1]), I(stride[0]), I(stride[1]), I(int(padding)), I(int(act))]

    def test_poolmax(self):
        out = infer_symbol("poolmax", self.pool_children(T(1, 8, 14, 14)))
        assert out.shape == (1, 8, 7, 7)

    def test_poolavg_same(self):
        out = infer_symbol("poolavg", self.pool_children(T(1, 8, 14, 14), (3, 3), (1, 1), Padding.SAME))
        assert out.shape == (1, 8, 14, 14)

    def test_pool_preserves_channel_split(self):
        x = T(1, 24, 14, 14).with_split(1, (16, 8))
        out = infer_symbol("poolmax", self.pool_children(x, (3, 3), (1, 1), Padding.SAME))
        assert out.split_sizes_for_axis(1) == (16, 8)


class TestConcatSplit:
    def test_concat_shapes_and_split_record(self):
        out = infer_symbol("concat2", [I(1), T(4, 8), T(4, 6)])
        assert out.shape == (4, 14)
        assert out.split_sizes_for_axis(1) == (8, 6)

    def test_concat3(self):
        out = infer_symbol("concat3", [I(0), T(2, 4), T(3, 4), T(5, 4)])
        assert out.shape == (10, 4)
        assert out.split_sizes_for_axis(0) == (2, 3, 5)

    def test_concat_mismatched_other_axis_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("concat2", [I(1), T(4, 8), T(5, 6)])

    def test_concat_axis_out_of_range_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("concat2", [I(3), T(4, 8), T(4, 6)])

    def test_split_uses_recorded_concat_position(self):
        x = infer_symbol("concat2", [I(1), T(4, 8), T(4, 6)])
        tup = infer_symbol("split", [I(1), x])
        assert tup.kind == DataKind.TUPLE
        assert tup.parts[0].shape == (4, 8)
        assert tup.parts[1].shape == (4, 6)

    def test_split_without_record_halves_even_dimension(self):
        tup = infer_symbol("split", [I(1), T(4, 10)])
        assert tup.parts[0].shape == (4, 5)

    def test_split_without_record_odd_dimension_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("split", [I(1), T(4, 9)])

    def test_split0_split1_project(self):
        x = infer_symbol("concat2", [I(0), T(3, 4), T(5, 4)])
        tup = infer_symbol("split", [I(0), x])
        assert infer_symbol("split0", [tup]).shape == (3, 4)
        assert infer_symbol("split1", [tup]).shape == (5, 4)

    def test_split0_on_non_tuple_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("split0", [T(4, 4)])

    def test_three_way_concat_remainder_keeps_record(self):
        x = infer_symbol("concat3", [I(1), T(4, 2), T(4, 3), T(4, 5)])
        tup = infer_symbol("split", [I(1), x])
        assert tup.parts[0].shape == (4, 2)
        # The remainder still knows it is a concat of (3, 5).
        rest = tup.parts[1]
        assert rest.shape == (4, 8)
        assert rest.split_sizes_for_axis(1) == (3, 5)


class TestGeometricOps:
    def test_transpose(self):
        out = infer_symbol("transpose", [T(4, 8), S("1 0")])
        assert out.shape == (8, 4)

    def test_transpose_moves_split_record(self):
        x = T(4, 8).with_split(1, (3, 5))
        out = infer_symbol("transpose", [x, S("1 0")])
        assert out.split_sizes_for_axis(0) == (3, 5)

    def test_transpose_bad_permutation_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("transpose", [T(4, 8), S("0 0")])

    def test_reshape(self):
        out = infer_symbol("reshape", [T(2, 6), S("3 4")])
        assert out.shape == (3, 4)

    def test_reshape_element_count_mismatch_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("reshape", [T(2, 6), S("3 5")])

    def test_enlarge(self):
        out = infer_symbol("enlarge", [T(16, 8, 1, 1), T(24, 8, 3, 3)])
        assert out.shape == (16, 8, 3, 3)

    def test_enlarge_shrink_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("enlarge", [T(16, 8, 5, 5), T(24, 8, 3, 3)])

    def test_merge_weight(self):
        out = infer_symbol("merge", [T(16, 4, 3, 3), I(2)])
        assert out.shape == (16, 8, 3, 3)

    def test_noop(self):
        out = infer_symbol("noop", [T(4, 8), T(2, 2)])
        assert out.kind == DataKind.TENSOR

    def test_unknown_arity_raises(self):
        with pytest.raises(ShapeError):
            infer_symbol("relu", [T(4, 8), T(4, 8)])

    def test_invalid_operand_propagates(self):
        with pytest.raises(ShapeError):
            infer_symbol("relu", [TensorData.invalid("bad")])
