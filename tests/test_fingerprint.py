"""Tests for the canonical graph fingerprint (service cache keying).

The contract (docs/service.md): fingerprints are invariant under node
reordering and input/weight renaming, sensitive to any op/shape/edge
change, and stable across processes (pinned by the golden hex digests).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TensatConfig
from repro.costs import AnalyticCostModel, TableCostModel
from repro.ir.graph import GraphBuilder
from repro.models import MODEL_NAMES, build_model
from repro.rules import default_ruleset
from repro.service.fingerprint import canonical_form, config_digest, graph_fingerprint

# --------------------------------------------------------------------- #
# Random same-shape expression trees, built under different names and
# construction orders
# --------------------------------------------------------------------- #

#: Square-shape ops compose freely at (8, 8), so any tree is a valid graph.
_UNARY = ("relu", "tanh", "sigmoid")
_BINARY = ("ewadd", "ewmul", "matmul")


def _tree_strategy():
    leaf = st.tuples(st.just("leaf"), st.integers(min_value=0, max_value=3))
    return st.recursive(
        leaf,
        lambda sub: st.one_of(
            st.tuples(st.sampled_from(_UNARY), sub),
            st.tuples(st.sampled_from(_BINARY), sub, sub),
        ),
        max_leaves=12,
    )


def _build_tree(tree, prefix: str, mirrored: bool):
    """Build ``tree`` into a graph; ``mirrored`` builds right subtrees first.

    Mirroring changes the *construction* order (and therefore every node id)
    without changing the graph: children are attached in their original
    positions either way.
    """
    builder = GraphBuilder(f"{prefix}graph")

    def build(node) -> int:
        if node[0] == "leaf":
            return builder.input(f"{prefix}leaf{node[1]}", (8, 8))
        if node[0] in _UNARY:
            return getattr(builder, node[0])(build(node[1]))
        op, left, right = node
        if mirrored:
            right_id = build(right)
            left_id = build(left)
        else:
            left_id = build(left)
            right_id = build(right)
        return getattr(builder, op)(left_id, right_id)

    return builder.finish(outputs=[build(tree)])


class TestInvariance:
    @settings(max_examples=60, deadline=None)
    @given(tree=_tree_strategy())
    def test_rename_and_reorder_invariant(self, tree):
        original = _build_tree(tree, "a_", mirrored=False)
        renamed_reordered = _build_tree(tree, "zz_", mirrored=True)
        assert graph_fingerprint(original) == graph_fingerprint(renamed_reordered)

    @settings(max_examples=30, deadline=None)
    @given(tree=_tree_strategy())
    def test_canonical_form_is_deterministic(self, tree):
        graph = _build_tree(tree, "x_", mirrored=False)
        assert canonical_form(graph) == canonical_form(graph)


class TestSensitivity:
    @staticmethod
    def _two_matmul(combine_same: bool):
        b = GraphBuilder("g")
        x = b.input("x", (8, 8))
        m1 = b.matmul(x, b.weight("w1", (8, 8)))
        m2 = m1 if combine_same else b.matmul(x, b.weight("w2", (8, 8)))
        return b.finish(outputs=[b.ewadd(m1, m2)])

    def test_edge_change_differs(self):
        # ewadd(m1, m2) vs ewadd(m1, m1): same ops, different wiring.
        assert graph_fingerprint(self._two_matmul(False)) != graph_fingerprint(self._two_matmul(True))

    @staticmethod
    def _unary_chain(op: str, shape):
        b = GraphBuilder("g")
        x = b.input("x", shape)
        w = b.weight("w", shape)
        return b.finish(outputs=[getattr(b, op)(b.matmul(x, w))])

    def test_op_change_differs(self):
        assert graph_fingerprint(self._unary_chain("relu", (8, 8))) != graph_fingerprint(
            self._unary_chain("tanh", (8, 8))
        )

    def test_shape_change_differs(self):
        assert graph_fingerprint(self._unary_chain("relu", (8, 8))) != graph_fingerprint(
            self._unary_chain("relu", (16, 16))
        )

    def test_parameter_change_differs(self):
        def conv(stride):
            b = GraphBuilder("g")
            x = b.input("x", (1, 8, 8, 8))
            w = b.weight("w", (8, 8, 3, 3))
            return b.finish(outputs=[b.conv(x, w, stride=stride)])

        assert graph_fingerprint(conv((1, 1))) != graph_fingerprint(conv((2, 2)))

    def test_output_order_is_significant(self):
        # The two branches must be structurally distinct: swapping the
        # outputs of two *symmetric* branches is a genuine isomorphism
        # (rename the weights) and correctly keeps the fingerprint.
        def two_out(flip: bool):
            b = GraphBuilder("g")
            x = b.input("x", (4, 8))
            m1 = b.matmul(x, b.weight("w1", (8, 8)))
            m2 = b.relu(b.matmul(x, b.weight("w2", (8, 8))))
            outs = [m2, m1] if flip else [m1, m2]
            return b.finish(outputs=outs)

        assert graph_fingerprint(two_out(False)) != graph_fingerprint(two_out(True))

    def test_symmetric_output_swap_is_an_isomorphism(self):
        # The counterpart of the previous test: interchangeable branches
        # swapped at the outputs *should* collide (rename w1 <-> w2).
        def two_out(flip: bool):
            b = GraphBuilder("g")
            x = b.input("x", (4, 8))
            m1 = b.matmul(x, b.weight("w1", (8, 8)))
            m2 = b.matmul(x, b.weight("w2", (8, 8)))
            outs = [m2, m1] if flip else [m1, m2]
            return b.finish(outputs=outs)

        assert graph_fingerprint(two_out(False)) == graph_fingerprint(two_out(True))

    def test_input_vs_weight_differs(self):
        def leaf(kind: str):
            b = GraphBuilder("g")
            x = b.input("x", (8, 8))
            other = getattr(b, kind)("y", (8, 8))
            return b.finish(outputs=[b.ewadd(x, other)])

        assert graph_fingerprint(leaf("input")) != graph_fingerprint(leaf("weight"))


#: Golden fingerprints of the built-in models at tiny scale.  These are pure
#: SHA-256 digests of the canonical form -- no id(), no hash seed -- so they
#: must be byte-identical in every process and Python version; a change here
#: means the fingerprint (or a model) changed and every service cache key
#: with it.
GOLDEN_TINY_FINGERPRINTS = {
    "nasrnn": "b8ae47247ddd21fbdc62f8e9ba5a055b4051943f6c8c60824f0a91445b7a2852",
    "bert": "8b985ffd20dfc48805cc76fab03a65116f6641b9d860072b6795f2af088a0234",
    "resnext": "22cf146bc487513a03f461d0265daf96ac83d66ba0a66c105224e538c4052f3c",
    "nasnet": "b1be9a1fc77e04ee8afe888a7d31ece14512ad70c25b7eaa6711a5706321d6f1",
    "squeezenet": "605cd3075ceeaaf1022a72eb6a798c482e16e8aa6efd417cd342c9860fe167ee",
    "vgg": "35ebaf91f0fa748eea4df4e41609bf127d171731fc95d3c8012cc0bc706108aa",
    "inception": "a1ada33d6c6ce3f7278a7b72ec87c0a02795fe83fd5ec4d4c155947e75679e58",
    "resnet": "ce770faf507fd81c4ecf91efbf3ef2d90c62a98d9d20670fec782b7bacf2a8a3",
}


class TestModelRegression:
    def test_covers_every_builtin_model(self):
        assert sorted(GOLDEN_TINY_FINGERPRINTS) == sorted(MODEL_NAMES)

    @pytest.mark.parametrize("model", MODEL_NAMES)
    def test_model_fingerprint_is_process_stable(self, model):
        assert graph_fingerprint(build_model(model, "tiny")) == GOLDEN_TINY_FINGERPRINTS[model]

    def test_model_fingerprints_are_distinct(self):
        assert len(set(GOLDEN_TINY_FINGERPRINTS.values())) == len(MODEL_NAMES)


class TestConfigDigest:
    def test_same_config_same_digest(self):
        assert config_digest(TensatConfig.fast()) == config_digest(TensatConfig.fast())

    def test_any_field_changes_the_digest(self):
        base = TensatConfig.fast()
        assert config_digest(base) != config_digest(base.with_overrides(k_multi=2))
        assert config_digest(base) != config_digest(base.with_overrides(extraction="greedy"))
        # Conservative by design: even no-result-impact knobs separate entries.
        assert config_digest(base) != config_digest(base.with_overrides(ilp_time_limit=61.0))

    def test_rules_and_cost_model_enter_the_digest(self):
        base = TensatConfig.fast()
        rules = default_ruleset()
        fewer = rules.filter(include_tags=["merge"])
        assert config_digest(base, rules=rules) != config_digest(base, rules=fewer)
        assert config_digest(base, cost_model=AnalyticCostModel()) != config_digest(
            base, cost_model=TableCostModel({}, default=1.0)
        )
