"""Tests for cycle detection and the two cycle-filtering strategies."""

from repro.egraph.cycles import (
    EfficientCycleFilter,
    FilterList,
    NoCycleFilter,
    VanillaCycleFilter,
    descendants_map,
    find_cycles,
    reaches,
    resolve_cycles,
    would_create_cycle,
)
from repro.egraph.egraph import EGraph
from repro.egraph.language import ENode
from repro.egraph.multipattern import MultiPatternRewrite
from repro.egraph.runner import Runner, RunnerLimits, make_cycle_filter


def figure3_egraph():
    """Reproduce the paper's Figure 3: applying the matmul merge rule to
    ``matmul(X, matmul(X, Y))`` creates a cycle at the e-class level."""
    eg = EGraph()
    inner = eg.add_term("(matmul 0 x y)")
    root = eg.add_term("(matmul 0 x (matmul 0 x y))")
    rule = MultiPatternRewrite.parse(
        "matmul-merge",
        sources=["(matmul ?a ?x ?w1)", "(matmul ?a ?x ?w2)"],
        targets=[
            "(split0 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
            "(split1 (split 1 (matmul ?a ?x (concat2 1 ?w1 ?w2))))",
        ],
    )
    return eg, inner, root, rule


class TestReachability:
    def test_descendants_map_simple(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        desc = descendants_map(eg)
        a = eg.add_term("a")
        g = eg.add_term("(g a)")
        assert a in desc[eg.find(root)]
        assert g in desc[eg.find(root)]
        assert desc[eg.find(a)] == set()

    def test_reaches(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        a = eg.add_term("a")
        b = eg.add_term("b")
        assert reaches(eg, root, a)
        assert not reaches(eg, a, root)
        assert not reaches(eg, a, b)

    def test_would_create_cycle(self):
        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        a = eg.add_term("a")
        desc = descendants_map(eg)
        # Adding to class `a` a node whose leaf is `root` would create a cycle.
        assert would_create_cycle(eg, [a], [root], desc)
        # Adding to `root` a node over `a` is fine.
        assert not would_create_cycle(eg, [root], [a], desc)

    def test_filtered_nodes_are_ignored(self):
        eg = EGraph()
        root = eg.add_term("(f a)")
        a = eg.add_term("a")
        flist = FilterList()
        # Filter the only f-node: root no longer reaches a.
        f_node = ENode("f", (eg.find(a),))
        flist.add(eg, f_node)
        assert not reaches(eg, root, a, flist)


class TestCycleDetection:
    def test_acyclic_graph_has_no_cycles(self):
        eg = EGraph()
        eg.add_term("(f (g a) (h a))")
        assert find_cycles(eg) == []

    def test_figure3_cycle_is_detected(self):
        eg, inner, root, rule = figure3_egraph()
        combos = rule.search(eg)
        for combo in combos:
            rule.apply_match(eg, combo)
        eg.rebuild()
        cycles = find_cycles(eg)
        assert cycles, "applying the merge rule to matmul(x, matmul(x, y)) must create a cycle"

    def test_resolve_cycles_filters_newest_node(self):
        eg, inner, root, rule = figure3_egraph()
        for combo in rule.search(eg):
            rule.apply_match(eg, combo)
        eg.rebuild()
        flist = FilterList()
        resolved = resolve_cycles(eg, flist, find_cycles(eg))
        assert resolved >= 1
        assert len(flist) >= 1
        # After enough resolutions the graph (minus filtered nodes) is acyclic.
        for _ in range(10):
            cycles = find_cycles(eg, flist)
            if not cycles:
                break
            resolve_cycles(eg, flist, cycles)
        assert find_cycles(eg, flist) == []


class TestFilters:
    def run_with_filter(self, kind):
        eg, inner, root, rule = figure3_egraph()
        cycle_filter = make_cycle_filter(kind)
        runner = Runner(
            eg,
            rewrites=[],
            multi_rewrites=[rule],
            limits=RunnerLimits(iter_limit=2, k_multi=2),
            cycle_filter=cycle_filter,
        )
        runner.run()
        return eg, cycle_filter

    def test_efficient_filter_leaves_acyclic_egraph(self):
        eg, cycle_filter = self.run_with_filter("efficient")
        assert find_cycles(eg, cycle_filter.filter_list) == []

    def test_vanilla_filter_leaves_acyclic_egraph(self):
        eg, cycle_filter = self.run_with_filter("vanilla")
        assert find_cycles(eg, cycle_filter.filter_list) == []

    def test_no_filter_can_leave_cycles(self):
        eg, cycle_filter = self.run_with_filter("none")
        assert isinstance(cycle_filter, NoCycleFilter)
        assert find_cycles(eg, cycle_filter.filter_list) != []

    def test_make_cycle_filter_rejects_unknown(self):
        import pytest

        with pytest.raises(ValueError):
            make_cycle_filter("bogus")

    def test_factory_types(self):
        assert isinstance(make_cycle_filter("vanilla"), VanillaCycleFilter)
        assert isinstance(make_cycle_filter("efficient"), EfficientCycleFilter)


class TestEdgeCases:
    """Cycle shapes the happy paths above don't exercise: self-loops,
    2-cycles created by unions, and extraction straight off a filtered
    cyclic fixture."""

    def test_self_loop_is_detected_and_resolved(self):
        # union(a, f(a)) puts the f-node in its own child class: a self-loop.
        eg = EGraph()
        a = eg.add_term("a")
        f = eg.add_term("(f a)")
        eg.union(a, f)
        eg.rebuild()
        cycles = find_cycles(eg)
        assert cycles, "a self-loop is a cycle"
        flist = FilterList()
        for _ in range(10):
            remaining = find_cycles(eg, flist)
            if not remaining:
                break
            resolve_cycles(eg, flist, remaining)
        assert find_cycles(eg, flist) == []
        assert len(flist) >= 1

    def test_self_loop_extraction_picks_the_acyclic_candidate(self):
        from repro.egraph.extraction.greedy import GreedyExtractor
        from repro.egraph.extraction.ilp import ILPExtractor

        eg = EGraph()
        a = eg.add_term("a")
        f = eg.add_term("(f a)")
        eg.union(a, f)
        eg.rebuild()
        root = eg.add(ENode("g", (eg.find(a),)))
        nc = lambda enode, egraph: 1.0  # noqa: E731
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc, with_cycle_constraints=True).extract(eg, root)
        assert str(greedy.expr) == "(g a)"
        assert str(ilp.expr) == "(g a)"

    def test_two_cycle_through_unions(self):
        # union(a, f(b)) and union(b, g(a)): class(a) -> class(b) -> class(a).
        eg = EGraph()
        a = eg.add_term("a")
        b = eg.add_term("b")
        fb = eg.add_term("(f b)")
        ga = eg.add_term("(g a)")
        eg.union(a, fb)
        eg.union(b, ga)
        eg.rebuild()
        cycles = find_cycles(eg)
        assert cycles
        assert reaches(eg, a, b) and reaches(eg, b, a)
        flist = FilterList()
        for _ in range(10):
            remaining = find_cycles(eg, flist)
            if not remaining:
                break
            resolve_cycles(eg, flist, remaining)
        assert find_cycles(eg, flist) == []

    def test_filter_then_extract_on_figure3(self):
        # The full paper pipeline on the known cyclic fixture: resolve the
        # cycles into a filter list, then extract without cycle constraints --
        # the filter list alone must guarantee an acyclic selection.
        from repro.egraph.extraction.ilp import ILPExtractor
        from repro.egraph.extraction.portfolio import PortfolioExtractor

        eg, inner, root, rule = figure3_egraph()
        for combo in rule.search(eg):
            rule.apply_match(eg, combo)
        eg.rebuild()
        flist = FilterList()
        for _ in range(10):
            remaining = find_cycles(eg, flist)
            if not remaining:
                break
            resolve_cycles(eg, flist, remaining)
        assert find_cycles(eg, flist) == []
        nc = lambda enode, egraph: 1.0  # noqa: E731
        result = ILPExtractor(
            nc, with_cycle_constraints=False, filter_list=flist
        ).extract(eg, root)
        # build_recexpr raises on a cyclic selection, so a term proves acyclicity.
        assert result.expr.subterm_size() >= 3
        portfolio = PortfolioExtractor(nc, deadline=30.0, filter_list=flist).extract(eg, root)
        assert portfolio.cost == result.cost

    def test_would_create_cycle_self_reference(self):
        eg = EGraph()
        a = eg.add_term("a")
        desc = descendants_map(eg)
        # A node in class(a) whose child is class(a) itself: immediate self-loop.
        assert would_create_cycle(eg, [a], [a], desc)


class TestFilterList:
    def test_contains_after_union(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        f = eg.add(ENode("f", (a,)))
        flist = FilterList()
        flist.add(eg, ENode("f", (a,)))
        eg.union(a, b)
        eg.rebuild()
        assert flist.contains(eg, ENode("f", (eg.find(a),)))

    def test_refresh_is_idempotent(self):
        eg = EGraph()
        a = eg.add(ENode("a"))
        flist = FilterList()
        flist.add(eg, ENode("g", (a,)))
        flist.refresh(eg)
        flist.refresh(eg)
        assert len(flist) == 1
