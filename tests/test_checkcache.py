"""Unit tests for the condition-check cache (memoized shape checking)."""

import pytest

from repro.egraph.analysis import DepthAnalysis
from repro.egraph.checkcache import DirectConditionChecker, MemoizedConditionChecker
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.language import ENode
from repro.egraph.multipattern import MultiMatch


class CountingCondition:
    """A condition that records its evaluations and returns a fixed verdict."""

    def __init__(self, verdict=True):
        self.verdict = verdict
        self.calls = 0

    def __call__(self, egraph, match):
        self.calls += 1
        return self.verdict


def _egraph():
    eg = EGraph()
    a = eg.add(ENode("a"))
    b = eg.add(ENode("b"))
    c = eg.add(ENode("c"))
    return eg, a, b, c


class TestDirectChecker:
    def test_every_check_evaluates_and_counts_as_miss(self):
        eg, a, b, _ = _egraph()
        checker = DirectConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        assert checker.check(1, cond, eg, match) is True
        assert checker.check(1, cond, eg, match) is True
        assert cond.calls == 2
        assert (checker.hits, checker.misses) == (0, 2)
        assert checker.seconds >= 0.0


class TestMemoizedChecker:
    def test_repeated_binding_hits(self):
        eg, a, b, _ = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        assert checker.check(1, cond, eg, match) is True
        assert checker.check(1, cond, eg, match) is True
        assert cond.calls == 1
        assert (checker.hits, checker.misses) == (1, 1)
        assert checker.hit_rate == 0.5

    def test_matched_root_is_not_part_of_the_key(self):
        # The apply phase unions every matched root, so keying on it would
        # invalidate the cache each iteration; conditions may only read the
        # bound classes (module contract), and matches differing only in
        # their root share one entry.
        eg, a, b, c = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        checker.check(1, cond, eg, Match(eclass=a, subst={"x": b}))
        checker.check(1, cond, eg, Match(eclass=c, subst={"x": b}))
        assert cond.calls == 1
        assert checker.hits == 1

    def test_different_rules_do_not_share_entries(self):
        eg, a, b, _ = _egraph()
        checker = MemoizedConditionChecker()
        cond_true, cond_false = CountingCondition(True), CountingCondition(False)
        match = Match(eclass=a, subst={"x": b})
        assert checker.check(1, cond_true, eg, match) is True
        assert checker.check(2, cond_false, eg, match) is False
        assert cond_true.calls == cond_false.calls == 1

    def test_var_order_and_sorted_keys_agree(self):
        eg, a, b, c = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b, "y": c})
        checker.check(1, cond, eg, match, var_order=("x", "y"))
        checker.check(1, cond, eg, match, var_order=("x", "y"))
        assert cond.calls == 1

    def test_multimatch_bindings_are_cached(self):
        eg, a, b, c = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        multi = MultiMatch(eclasses=(a, c), subst={"x": b})
        assert checker.check(7, cond, eg, multi) is True
        assert checker.check(7, cond, eg, multi) is True
        assert cond.calls == 1

    def test_dirty_binding_class_invalidates(self):
        eg, a, b, _ = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        checker.check(1, cond, eg, match)
        checker.advance([eg.find(b)])
        assert checker.check(1, cond, eg, match) is True
        assert cond.calls == 2
        assert checker.invalidated == 1

    def test_untouched_binding_survives_generations(self):
        eg, a, b, c = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        checker.check(1, cond, eg, match)
        for _ in range(3):
            checker.advance([eg.find(c)])  # unrelated class churns
        assert checker.check(1, cond, eg, match) is True
        assert cond.calls == 1
        assert checker.hits == 1

    def test_entry_refreshes_after_invalidation(self):
        eg, a, b, _ = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        checker.check(1, cond, eg, match)
        checker.advance([eg.find(b)])
        checker.check(1, cond, eg, match)  # recomputed at the new generation
        checker.advance([])  # nothing dirtied since
        assert checker.check(1, cond, eg, match) is True
        assert cond.calls == 2

    def test_entry_cap_bounds_the_store(self):
        eg, a, b, c = _egraph()
        checker = MemoizedConditionChecker()
        checker.max_entries = 2
        cond = CountingCondition()
        for var_cls in (a, b, c):
            checker.check(1, cond, eg, Match(eclass=a, subst={"x": var_cls}))
        assert len(checker) <= 2
        assert checker.evictions == 1

    def test_legacy_four_argument_join_still_works_with_cache_on(self):
        # Joins registered against the pre-checker signature must keep
        # working when a checker is in play: combine() only forwards the
        # checker to joins that accept it.
        from repro.core.registry import MULTIPATTERN_JOINS
        from repro.egraph.multipattern import MultiPatternRewrite

        def legacy_join(rule, egraph, per_source_matches, max_combinations):
            return rule._combine_product(egraph, per_source_matches, max_combinations)

        MULTIPATTERN_JOINS.register("test-legacy", legacy_join)
        try:
            eg = EGraph()
            eg.add_term("(root (f a) (g a))")
            rule = MultiPatternRewrite.parse(
                "pair", ["(f ?x)", "(g ?x)"], ["(p ?x)", "(q ?x)"],
                condition=lambda egraph, multi: True,
            )
            from repro.egraph.ematch import search_pattern

            per_source = [search_pattern(eg, p) for p in rule.sources]
            checker = MemoizedConditionChecker()
            combos = rule.combine(eg, per_source, join="test-legacy", checker=checker)
            assert combos == rule.combine(eg, per_source, join="product", checker=checker)
            assert len(combos) == 1
        finally:
            MULTIPATTERN_JOINS.unregister("test-legacy")

    def test_clear_drops_entries(self):
        eg, a, b, _ = _egraph()
        checker = MemoizedConditionChecker()
        cond = CountingCondition()
        match = Match(eclass=a, subst={"x": b})
        checker.check(1, cond, eg, match)
        assert len(checker) == 1
        checker.clear()
        assert len(checker) == 0
        checker.check(1, cond, eg, match)
        assert cond.calls == 2


class TestConditionDirtyTracking:
    def test_analysis_repair_marks_condition_dirty(self):
        # A union whose rebuild lowers a parent's analysis data must surface
        # the parent in take_condition_dirty even though no structural change
        # touched it -- this is what keeps cached verdicts honest when
        # analysis data changes between iterations.
        eg = EGraph(analysis=DepthAnalysis())
        deep = eg.add_term("(f (g a))")
        shallow = eg.add_term("b")
        parent = eg.add(ENode("h", (deep,)))
        assert eg.analysis_data(parent) == 4
        eg.take_condition_dirty()

        eg.union(deep, shallow)
        eg.rebuild()
        assert eg.analysis_data(parent) == 2  # data changed during repair
        dirty = eg.take_condition_dirty()
        assert eg.find(parent) in dirty

    def test_take_condition_dirty_resets(self):
        eg, a, b, _ = _egraph()
        eg.take_condition_dirty()
        eg.union(a, b)
        eg.rebuild()
        assert eg.find(a) in eg.take_condition_dirty()
        assert eg.take_condition_dirty() == set()


class TestEndToEnd:
    def test_cache_on_off_walk_identical_trajectories(self):
        from repro.core.config import TensatConfig
        from repro.core.session import OptimizationSession
        from repro.models import build_model

        records = {}
        for cache in ("memo", "off"):
            config = TensatConfig(
                node_limit=2_000, iter_limit=5, k_multi=2,
                extraction="greedy", condition_cache=cache,
            )
            session = OptimizationSession(build_model("nasrnn", "tiny"), config=config)
            result = session.result()
            report = result.runner_report
            records[cache] = {
                "enodes": result.stats.num_enodes,
                "cost": result.stats.optimized_cost,
                "stop": result.stats.stop_reason,
                "matches": tuple(it.n_matches for it in report.iterations),
                "applied": tuple(it.n_applied for it in report.iterations),
            }
            # Both modes account condition checks; only memo can hit.
            checks = (
                result.stats.condition_cache_hits + result.stats.condition_cache_misses
            )
            assert checks > 0
            if cache == "memo":
                assert result.stats.condition_cache_hits > 0
            else:
                assert result.stats.condition_cache_hits == 0
        assert records["memo"] == records["off"]

    def test_unknown_cache_kind_rejected(self):
        from repro.core.config import TensatConfig

        with pytest.raises(ValueError, match="condition cache"):
            TensatConfig(condition_cache="lru")

    def test_runner_limits_validates_cache_kind(self):
        from repro.egraph.runner import Runner, RunnerLimits

        with pytest.raises(ValueError, match="condition cache"):
            Runner(EGraph(), limits=RunnerLimits(condition_cache="bogus"))
