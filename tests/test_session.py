"""Session-API semantics: step parity, observers, batch parity, shims.

The acceptance invariant of the session redesign is that every driving style
-- step-at-a-time ``session.step()`` loops, the one-shot ``optimize()``
composition, and the batch ``optimize_many()`` front door sharing one
compiled rule trie -- walks a bit-for-bit identical saturation trajectory
and produces identical extraction results.
"""

from __future__ import annotations

import pytest

from repro import (
    OptimizationSession,
    RecordingObserver,
    PhaseTimingObserver,
    TensatConfig,
    TensatOptimizer,
    optimize,
    optimize_many,
)
from repro.models import build_model

FAST = TensatConfig.fast()

#: Small budgets: parity tests check equivalence, not scale.
GOLDEN_CONFIG = dict(node_limit=1_500, iter_limit=4, k_multi=1, extraction="greedy")


def _trajectory(result) -> dict:
    """Everything that must be bit-for-bit identical across driving styles."""
    report = result.runner_report
    return {
        "num_enodes": result.stats.num_enodes,
        "num_eclasses": result.stats.num_eclasses,
        "original_cost": result.stats.original_cost,
        "optimized_cost": result.stats.optimized_cost,
        "stop_reason": result.stats.stop_reason,
        "extraction_status": result.stats.extraction_status,
        "iterations": report.num_iterations,
        "per_iteration_matches": tuple(it.n_matches for it in report.iterations),
        "per_iteration_applied": tuple(it.n_applied for it in report.iterations),
        "per_iteration_deduped": tuple(it.n_deduped for it in report.iterations),
        "per_iteration_enodes": tuple(it.n_enodes for it in report.iterations),
    }


class TestStepParity:
    @pytest.mark.slow
    @pytest.mark.parametrize("model", ["nasrnn", "resnext"])
    def test_step_loop_matches_one_shot_optimize(self, model):
        config = TensatConfig(**GOLDEN_CONFIG)
        one_shot = optimize(build_model(model, "tiny"), config=config)

        session = OptimizationSession(build_model(model, "tiny"), config=config)
        n_steps = 0
        while session.step() is not None:
            n_steps += 1
            # The session is inspectable between iterations.
            assert session.iteration_reports[-1].index == n_steps - 1
            assert session.egraph.num_enodes > 0
        result = session.result()

        assert n_steps == one_shot.runner_report.num_iterations
        assert _trajectory(result) == _trajectory(one_shot)

    def test_step_parity_fast(self, shared_matmul_graph, nasrnn_like_graph):
        for graph_a, graph_b in ((shared_matmul_graph, nasrnn_like_graph),):
            for graph in (graph_a, graph_b):
                one_shot = optimize(graph, config=FAST)
                session = OptimizationSession(graph, config=FAST)
                while session.step() is not None:
                    pass
                assert _trajectory(session.result()) == _trajectory(one_shot)

    def test_step_returns_none_after_exploration_stops(self, shared_matmul_graph):
        session = OptimizationSession(shared_matmul_graph, config=FAST)
        session.explore()
        assert session.report is not None
        assert session.step() is None
        assert session.runner.done
        assert session.runner.stop_reason is not None

    def test_phases_are_idempotent(self, shared_matmul_graph):
        session = OptimizationSession(shared_matmul_graph, config=FAST)
        report = session.explore()
        assert session.explore() is report
        extraction = session.extract()
        assert session.extract() is extraction
        optimized = session.materialize()
        assert session.materialize() is optimized
        result = session.result()
        assert session.result() is result

    def test_result_runs_all_phases(self, shared_matmul_graph):
        result = OptimizationSession(shared_matmul_graph, config=FAST).result()
        assert result.stats.num_enodes > 0
        assert result.stats.extraction_status
        assert result.stats.total_seconds >= result.stats.exploration_seconds

    def test_runner_report_requires_stop(self, shared_matmul_graph):
        session = OptimizationSession(shared_matmul_graph, config=FAST)
        session.step()
        if not session.runner.done:
            with pytest.raises(RuntimeError):
                session.runner.report()


class TestObservers:
    def test_event_stream_ordering_and_counts(self, shared_matmul_graph):
        recorder = RecordingObserver()
        result = optimize(shared_matmul_graph, config=FAST, observers=[recorder])
        report = result.runner_report

        starts = recorder.of_kind("iteration_start")
        ends = recorder.of_kind("iteration_end")
        assert len(starts) == len(ends) == report.num_iterations
        assert [e[1] for e in starts] == list(range(report.num_iterations))
        assert [e[1] for e in ends] == list(range(report.num_iterations))

        # Phases complete in pipeline order, exactly once each.
        phases = [e[1] for e in recorder.of_kind("phase")]
        assert phases == ["exploration", "extraction", "materialization"]

        # Every iteration's match batches land between its start and end
        # events, and their counts sum to the iteration's n_matches.
        for iteration, it_report in enumerate(report.iterations):
            batch_total = sum(
                e[3] for e in recorder.of_kind("match_batch") if e[1] == iteration
            )
            assert batch_total == it_report.n_matches
        kinds = [e[0] for e in recorder.events]
        first_end = kinds.index("iteration_end")
        assert "iteration_start" in kinds[:first_end]

    def test_event_interleaving_per_iteration(self, shared_matmul_graph):
        recorder = RecordingObserver()
        optimize(shared_matmul_graph, config=FAST, observers=[recorder])
        current = None
        for event in recorder.events:
            if event[0] == "iteration_start":
                assert current is None
                current = event[1]
            elif event[0] == "match_batch":
                assert event[1] == current
            elif event[0] == "iteration_end":
                assert event[1] == current
                current = None

    def test_observers_do_not_change_trajectory(self, nasrnn_like_graph):
        silent = optimize(nasrnn_like_graph, config=FAST)
        observed = optimize(
            nasrnn_like_graph, config=FAST, observers=[RecordingObserver(), PhaseTimingObserver()]
        )
        assert _trajectory(observed) == _trajectory(silent)

    def test_phase_timing_observer_matches_stats(self, shared_matmul_graph):
        timing = PhaseTimingObserver()
        result = optimize(shared_matmul_graph, config=FAST, observers=[timing])
        assert timing.iterations == result.runner_report.num_iterations
        assert timing.phase_seconds["exploration"] == pytest.approx(
            result.stats.exploration_seconds
        )
        assert timing.phase_seconds["extraction"] == pytest.approx(
            result.stats.extraction_seconds
        )
        assert timing.search_seconds == pytest.approx(result.stats.search_seconds)
        assert timing.apply_seconds == pytest.approx(result.stats.apply_seconds)
        assert timing.rebuild_seconds == pytest.approx(result.stats.rebuild_seconds)
        assert timing.total_seconds == pytest.approx(result.stats.total_seconds)
        assert len(timing.per_iteration) == timing.iterations


class TestOptimizeMany:
    @pytest.mark.slow
    def test_batch_matches_sequential(self):
        config = TensatConfig(**GOLDEN_CONFIG)
        models = ["nasrnn", "resnext"]
        batch = optimize_many([build_model(m, "tiny") for m in models], config=config)
        sequential = [optimize(build_model(m, "tiny"), config=config) for m in models]
        assert len(batch) == len(sequential) == 2
        for batched, single in zip(batch, sequential):
            assert _trajectory(batched) == _trajectory(single)

    def test_batch_fast_and_overrides(self, shared_matmul_graph, nasrnn_like_graph):
        results = optimize_many(
            [shared_matmul_graph, nasrnn_like_graph], config=FAST, extraction="greedy"
        )
        assert len(results) == 2
        for result in results:
            assert result.optimized_cost <= result.original_cost + 1e-9
            assert result.stats.extraction_status.startswith("greedy") or result.stats.extraction_status

    def test_batch_non_trie_config(self, shared_matmul_graph):
        # No shared trie to build on the per-rule path; still works and agrees.
        config = FAST.with_overrides(search_mode="per-rule", extraction="greedy")
        (batched,) = optimize_many([shared_matmul_graph], config=config)
        single = optimize(shared_matmul_graph, config=config)
        assert _trajectory(batched) == _trajectory(single)


class TestDeprecatedShims:
    def test_explore_shim_warns_and_returns_tuple(self, shared_matmul_graph):
        optimizer = TensatOptimizer(config=FAST)
        with pytest.warns(DeprecationWarning, match="explore"):
            egraph, root, cycle_filter, report = optimizer.explore(shared_matmul_graph)
        assert report.num_iterations >= 1
        assert egraph.num_enodes > 0
        with pytest.warns(DeprecationWarning, match="extract"):
            extraction = optimizer.extract(egraph, root, cycle_filter)
        assert extraction.expr is not None

    def test_shims_match_session(self, shared_matmul_graph):
        optimizer = TensatOptimizer(config=FAST)
        with pytest.warns(DeprecationWarning):
            _egraph, _root, _filter, report = optimizer.explore(shared_matmul_graph)
        session = optimizer.session(shared_matmul_graph)
        session_report = session.explore()
        assert report.num_iterations == session_report.num_iterations
        assert report.n_enodes == session_report.n_enodes
        assert report.stop_reason == session_report.stop_reason
