"""Portfolio extraction: golden parity, warm-start parity, deadline semantics.

Three contracts:

* **Parity** -- ``extraction="portfolio"`` with a generous deadline lands on
  the same cost as plain ILP (the anytime race must converge to the exact
  optimum when given the time), and warm-started ILP equals cold ILP (cost
  *and* extracted graph).
* **Deadline** -- under a deadline too tight for the exact stages the
  portfolio degrades to greedy, never raises, and records
  ``"portfolio_greedy_fallback"`` in ``stats.extraction_status`` (the PR 4
  regression-guard provenance convention).
* **Stats spine** -- per-stage timings, the prune ratio, and the
  ``on_extraction`` event reach ``OptimizationStats`` / observers.
"""

from __future__ import annotations

import pytest

from repro.core.config import TensatConfig
from repro.core.events import PhaseTimingObserver, RecordingObserver
from repro.core.session import OptimizationSession
from repro.egraph.extraction.greedy import GreedyExtractor
from repro.egraph.extraction.ilp import ILPExtractor
from repro.egraph.extraction.portfolio import PortfolioExtractor
from repro.models import build_model

BASE = dict(node_limit=2_000, iter_limit=5, k_multi=1)

PARITY_MODELS = ["nasrnn", "resnext"]


def _run(model: str, **overrides):
    config = TensatConfig(**{**BASE, **overrides})
    session = OptimizationSession(build_model(model, "tiny"), config=config)
    return session.result()


class TestPortfolioParity:
    @pytest.mark.slow
    @pytest.mark.parametrize("model", PARITY_MODELS)
    def test_generous_deadline_matches_plain_ilp(self, model):
        ilp = _run(model, extraction="ilp", ilp_time_limit=30.0)
        portfolio = _run(
            model, extraction="portfolio", extraction_deadline=120.0, ilp_time_limit=30.0
        )
        assert portfolio.stats.optimized_cost == pytest.approx(ilp.stats.optimized_cost)
        assert portfolio.stats.extraction_status.startswith("portfolio_")
        assert not portfolio.stats.extraction_status.endswith("_fallback")

    @pytest.mark.slow
    @pytest.mark.parametrize("model", PARITY_MODELS)
    def test_warm_ilp_matches_cold_ilp(self, model):
        warm = _run(model, extraction="ilp", ilp_time_limit=30.0, ilp_warm_start=True)
        cold = _run(model, extraction="ilp", ilp_time_limit=30.0, ilp_warm_start=False)
        assert warm.stats.optimized_cost == pytest.approx(cold.stats.optimized_cost)
        # Same extracted graph, not just the same headline cost.
        assert str(warm.extraction.expr) == str(cold.extraction.expr)


class TestDeadlineSemantics:
    def test_tight_deadline_falls_back_to_greedy_and_never_raises(self):
        result = _run(
            "nasrnn", extraction="portfolio", extraction_deadline=1e-6, ilp_time_limit=30.0
        )
        assert result.stats.extraction_status == "portfolio_greedy_fallback"
        assert result.stats.optimized_cost > 0
        assert result.optimized is not None

    def test_fallback_status_reaches_stats_extraction_status(self):
        config = TensatConfig(**BASE, extraction="portfolio", extraction_deadline=1e-6)
        session = OptimizationSession(build_model("nasrnn", "tiny"), config=config)
        extraction = session.extract()
        assert extraction.status == "portfolio_greedy_fallback"
        assert session.extraction_status == "portfolio_greedy_fallback"
        stats = session.result().stats
        assert stats.extraction_status == "portfolio_greedy_fallback"
        assert stats.as_dict()["extraction_status"] == "portfolio_greedy_fallback"

    def test_greedy_stage_always_runs_even_with_expired_deadline(self):
        # The greedy stage is the feasibility floor: it runs regardless of
        # how little budget remains, so the portfolio always returns a term.
        eg_session = OptimizationSession(
            build_model("nasrnn", "tiny"),
            config=TensatConfig(**BASE, extraction="portfolio", extraction_deadline=1e-9),
        )
        extraction = eg_session.extract()
        assert extraction.expr is not None
        assert "greedy" in extraction.stages

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError):
            TensatConfig(extraction_deadline=0.0)
        with pytest.raises(ValueError):
            PortfolioExtractor(lambda n, e: 1.0, deadline=-1.0)


class TestPortfolioStages:
    def test_stage_provenance_recorded(self):
        config = TensatConfig(**BASE, extraction="portfolio", extraction_deadline=60.0)
        session = OptimizationSession(build_model("nasrnn", "tiny"), config=config)
        extraction = session.extract()
        assert "greedy" in extraction.stages
        assert "greedy" in extraction.stage_costs
        # The winning stage's cost is the returned cost.
        assert extraction.cost == pytest.approx(min(extraction.stage_costs.values()))

    def test_stats_carry_stage_seconds_and_prune_ratio(self):
        result = _run("nasrnn", extraction="portfolio", extraction_deadline=60.0)
        stats = result.stats
        assert stats.extraction_stage_seconds  # at least the greedy stage
        assert all(secs >= 0.0 for secs in stats.extraction_stage_seconds.values())
        assert stats.extraction_prune_ratio >= 1.0
        payload = stats.as_dict()
        assert "extraction_stage_seconds" in payload
        assert "extraction_prune_ratio" in payload

    def test_on_extraction_event_fires_with_the_result(self):
        recording = RecordingObserver()
        timing = PhaseTimingObserver()
        config = TensatConfig(**BASE, extraction="portfolio", extraction_deadline=60.0)
        session = OptimizationSession(
            build_model("nasrnn", "tiny"), config=config, observers=[recording, timing]
        )
        extraction = session.extract()
        events = recording.of_kind("extraction")
        assert len(events) == 1
        assert events[0][1] is extraction
        assert timing.extraction_stage_seconds
        assert timing.extraction_prune_ratio >= 1.0


class TestPortfolioUnit:
    def test_portfolio_matches_ilp_on_shared_plan(self):
        # The canonical greedy-vs-ILP separation: sharing one expensive node.
        from tests.test_extraction_ilp import cost_table, shared_plan_egraph

        eg, root, costs = shared_plan_egraph()
        nc = cost_table(costs)
        greedy = GreedyExtractor(nc).extract(eg, root)
        ilp = ILPExtractor(nc).extract(eg, root)
        portfolio = PortfolioExtractor(nc, deadline=60.0).extract(eg, root)
        assert greedy.cost == pytest.approx(14.0)
        assert ilp.cost == pytest.approx(10.0)
        assert portfolio.cost == pytest.approx(10.0)
        assert portfolio.status in ("portfolio_bnb", "portfolio_ilp")

    def test_portfolio_status_is_greedy_when_greedy_is_optimal(self):
        from tests.test_extraction_ilp import cost_table

        from repro.egraph.egraph import EGraph

        eg = EGraph()
        root = eg.add_term("(f (g a) b)")
        portfolio = PortfolioExtractor(cost_table({}), deadline=60.0).extract(eg, root)
        # No strict improvement over greedy -> greedy keeps the win.
        assert portfolio.status == "portfolio_greedy"
