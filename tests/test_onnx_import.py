"""Tests for the ONNX front door: the self-contained protobuf codec
(:mod:`repro.ir.onnx_proto`) and the importer (:mod:`repro.ir.onnx_import`).

The decode path is pure Python, so everything here runs without the ``onnx``
package; the interop tests at the bottom cross-check against the real
library when it happens to be installed (the dedicated CI leg) and skip
cleanly otherwise.
"""

import struct
from pathlib import Path

import pytest

from repro.core import TensatConfig, optimize
from repro.ir.graph import TensorGraph
from repro.ir.onnx_import import (
    FRONTEND_OPS,
    OnnxImportError,
    import_onnx,
    onnx_coverage,
)
from repro.ir.onnx_proto import (
    AttributeKind,
    AttrLite,
    DT_FLOAT,
    DT_INT64,
    GraphLite,
    ModelLite,
    NodeLite,
    OnnxDecodeError,
    TensorLite,
    ValueInfoLite,
    encode_model,
    parse_model,
    tensor_floats,
    tensor_ints,
)
from repro.ir.opspec import OPS, register_concat
from repro.ir.validate import validate_graph
from repro.models import load_onnx_model, parse_dim_overrides
from repro.service.fingerprint import graph_fingerprint

ONNX_DIR = Path(__file__).parent / "data" / "onnx"


def _vi(name, dims):
    return ValueInfoLite(name=name, elem_type=DT_FLOAT, dims=tuple(dims))


def _weight(name, dims):
    count = 1
    for d in dims:
        count *= d
    return TensorLite(name=name, dims=tuple(dims), data_type=DT_FLOAT,
                      float_data=tuple(0.125 * i for i in range(count)))


def _model(nodes, inputs, outputs, initializers=(), name="t"):
    return ModelLite(
        ir_version=7,
        opset={"": 13},
        graph=GraphLite(name=name, inputs=list(inputs), outputs=list(outputs),
                        initializers=list(initializers), nodes=list(nodes)),
    )


class TestProtoCodec:
    def test_encode_parse_roundtrip(self):
        model = _model(
            nodes=[NodeLite(op_type="Relu", name="r", inputs=("x",), outputs=("y",),
                            attrs={"alpha": AttrLite(name="alpha", type=AttributeKind.FLOAT, f=0.5)})],
            inputs=[_vi("x", (2, 3))],
            outputs=[_vi("y", (2, 3))],
            initializers=[_weight("w", (2, 2))],
        )
        decoded = parse_model(encode_model(model))
        assert decoded.ir_version == 7
        assert decoded.opset.get("") == 13
        graph = decoded.graph
        assert graph.name == "t"
        assert [n.op_type for n in graph.nodes] == ["Relu"]
        assert graph.nodes[0].attrs["alpha"].f == pytest.approx(0.5)
        assert [vi.dims for vi in graph.inputs] == [(2, 3)]
        (init,) = graph.initializers
        assert init.dims == (2, 2)
        assert tensor_floats(init)[:3] == pytest.approx((0.0, 0.125, 0.25))

    def test_raw_data_and_int64_tensors(self):
        raw = TensorLite(name="w", dims=(3,), data_type=DT_FLOAT,
                         raw_data=struct.pack("<3f", 1.0, 2.0, 3.0))
        ints = TensorLite(name="s", dims=(2,), data_type=DT_INT64, int64_data=(0, -1))
        model = _model(nodes=[], inputs=[_vi("x", (1,))], outputs=[_vi("x", (1,))],
                       initializers=[raw, ints])
        decoded = parse_model(encode_model(model))
        w, s = decoded.graph.initializers
        assert tensor_floats(w) == pytest.approx((1.0, 2.0, 3.0))
        assert tensor_ints(s) == (0, -1)

    def test_garbage_bytes_raise_decode_error(self):
        with pytest.raises(OnnxDecodeError):
            parse_model(b"\xff\xff\xff\xff\xff")

    def test_checked_in_files_decode(self):
        for name in ("mlp_tiny", "convnet_tiny"):
            model = parse_model((ONNX_DIR / f"{name}.onnx").read_bytes())
            assert model.graph.name == name
            assert model.graph.nodes


class TestImporterMapping:
    def test_coverage_table_comes_from_registry(self):
        coverage = onnx_coverage()
        for onnx_op, ir_name in coverage.items():
            spec = OPS.from_name(ir_name)
            assert spec is not None and onnx_op in spec.onnx_ops

    def test_in_memory_model_imports(self):
        model = _model(
            nodes=[
                NodeLite(op_type="MatMul", name="mm", inputs=("x", "w"), outputs=("h",)),
                NodeLite(op_type="Relu", name="r", inputs=("h",), outputs=("y",)),
            ],
            inputs=[_vi("x", (4, 2))],
            outputs=[_vi("y", (4, 2))],
            initializers=[_weight("w", (2, 2))],
        )
        graph = import_onnx(encode_model(model), name="inmem")
        assert isinstance(graph, TensorGraph)
        validate_graph(graph)
        hist = graph.op_histogram()
        assert hist.get("matmul") == 1 and hist.get("relu") == 1
        assert graph.nodes[graph.outputs[0]].shape == (4, 2)

    def test_unknown_op_is_typed_error_naming_node(self):
        model = _model(
            nodes=[NodeLite(op_type="Softmax", name="sm", inputs=("x",), outputs=("y",))],
            inputs=[_vi("x", (2, 3))], outputs=[_vi("y", (2, 3))],
        )
        with pytest.raises(OnnxImportError) as err:
            import_onnx(encode_model(model))
        assert "sm" in str(err.value) and "Softmax" in str(err.value)

    def test_shape_error_is_wrapped_with_node_name(self):
        model = _model(
            nodes=[NodeLite(op_type="MatMul", name="bad_mm", inputs=("x", "w"), outputs=("y",))],
            inputs=[_vi("x", (4, 3))], outputs=[_vi("y", (4, 2))],
            initializers=[_weight("w", (2, 2))],  # inner dims 3 vs 2
        )
        with pytest.raises(OnnxImportError) as err:
            import_onnx(encode_model(model))
        assert "bad_mm" in str(err.value)

    def test_dim_param_requires_override(self):
        model = _model(
            nodes=[NodeLite(op_type="Relu", name="r", inputs=("x",), outputs=("y",))],
            inputs=[ValueInfoLite(name="x", elem_type=DT_FLOAT, dims=("batch", 3))],
            outputs=[_vi("y", (1, 3))],
        )
        data = encode_model(model)
        with pytest.raises(OnnxImportError) as err:
            import_onnx(data)
        assert "batch" in str(err.value)
        graph = import_onnx(data, dim_overrides={"batch": 2})
        assert graph.nodes[graph.outputs[0]].shape == (2, 3)

    def test_wide_concat_is_rejected_with_typed_error(self):
        width = OPS.concat_max_inputs + 1
        names = [f"x{i}" for i in range(width)]
        model = _model(
            nodes=[NodeLite(op_type="Concat", name="wide", inputs=tuple(names),
                            outputs=("y",),
                            attrs={"axis": AttrLite(name="axis", type=AttributeKind.INT, i=0)})],
            inputs=[_vi(n, (1, 2)) for n in names],
            outputs=[_vi("y", (width, 2))],
        )
        data = encode_model(model)
        with pytest.raises(OnnxImportError) as err:
            import_onnx(data)
        message = str(err.value)
        assert "wide" in message and "register_concat" in message

        # Widening the registered family lifts the cliff for the same bytes.
        register_concat(width + 1)
        try:
            graph = import_onnx(data)
            assert graph.nodes[graph.outputs[0]].shape == (width, 2)
        finally:
            register_concat(8)

    def test_frontend_ops_produce_no_ir_nodes(self):
        assert set(FRONTEND_OPS) == {"Constant", "Identity"}
        graph = import_onnx(ONNX_DIR / "convnet_tiny.onnx")
        assert "Constant" not in graph.op_histogram()


class TestGoldenImports:
    """Golden import -> optimize -> extract runs for the checked-in models."""

    CONFIG = TensatConfig(node_limit=2_000, iter_limit=5, k_multi=1, extraction="greedy")

    def test_mlp_tiny(self):
        graph = load_onnx_model(ONNX_DIR / "mlp_tiny.onnx")
        validate_graph(graph)
        assert graph.op_histogram() == {
            "matmul": 2, "relu": 1, "tanh": 1, "transpose": 2, "ewadd": 1,
        }
        result = optimize(graph, config=self.CONFIG)
        assert result.stats.optimized_cost < result.stats.original_cost
        assert result.stats.stop_reason == "saturated"

    def test_convnet_tiny(self):
        graph = load_onnx_model(ONNX_DIR / "convnet_tiny.onnx")
        validate_graph(graph)
        hist = graph.op_histogram()
        assert hist.get("conv") == 2 and hist.get("concat") == 1
        assert graph.nodes[graph.outputs[0]].shape == (1, 10)
        result = optimize(graph, config=self.CONFIG)
        assert result.stats.optimized_cost <= result.stats.original_cost

    def test_import_is_deterministic(self):
        a = load_onnx_model(ONNX_DIR / "mlp_tiny.onnx")
        b = load_onnx_model(ONNX_DIR / "mlp_tiny.onnx")
        assert graph_fingerprint(a) == graph_fingerprint(b)


class TestDimOverrideParsing:
    def test_parse_pairs(self):
        assert parse_dim_overrides(["batch=4", "seq=128"]) == {"batch": 4, "seq": 128}

    def test_malformed_pairs_raise(self):
        with pytest.raises(OnnxImportError):
            parse_dim_overrides(["batch"])
        with pytest.raises(OnnxImportError):
            parse_dim_overrides(["batch=big"])

    def test_missing_file_raises(self):
        with pytest.raises(OnnxImportError):
            load_onnx_model(ONNX_DIR / "does_not_exist.onnx")


try:
    import onnx  # noqa: F401
    HAVE_ONNX = True
except ImportError:
    HAVE_ONNX = False


@pytest.mark.skipif(not HAVE_ONNX, reason="interop tests need the real onnx package")
class TestOnnxPackageInterop:  # pragma: no cover - exercised on the onnx CI leg
    def test_checked_in_models_pass_checker(self):
        for name in ("mlp_tiny", "convnet_tiny"):
            model = onnx.load(str(ONNX_DIR / f"{name}.onnx"))
            onnx.checker.check_model(model)

    def test_real_modelproto_imports(self):
        model = onnx.load(str(ONNX_DIR / "mlp_tiny.onnx"))
        graph = import_onnx(model)  # object with SerializeToString
        assert graph.op_histogram().get("matmul") == 2
