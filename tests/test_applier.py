"""Unit tests for the batched apply plan (plan construction, dedup, execution)."""

import pytest

from repro.egraph.applier import ApplyPlan
from repro.egraph.cycles import VanillaCycleFilter
from repro.egraph.egraph import EGraph
from repro.egraph.ematch import Match
from repro.egraph.multipattern import MultiMatch, MultiPatternRewrite
from repro.egraph.rewrite import Rewrite


def _seeded():
    eg = EGraph()
    root = eg.add_term("(f (g a) (g b))")
    return eg, root


class TestDedup:
    def test_identical_substitutions_apply_once(self):
        eg, _ = _seeded()
        rule = Rewrite.parse("swap", "(f ?x ?y)", "(f ?y ?x)")
        matches = rule.search(eg)
        assert len(matches) == 1

        plan = ApplyPlan()
        assert plan.add_rewrite(rule, matches[0]) is True
        assert plan.add_rewrite(rule, matches[0]) is False  # identical instantiation
        assert plan.n_planned == 2
        assert plan.n_deduped == 1
        assert len(plan) == 1

        stats = plan.execute(eg)
        assert stats.n_applied == 1
        assert stats.n_deduped == 1

    def test_rules_sharing_rhs_dedup_across_rules(self):
        eg, _ = _seeded()
        rule_a = Rewrite.parse("a", "(f ?x ?y)", "(h ?x)")
        rule_b = Rewrite.parse("b", "(f ?x ?y)", "(h ?x)")
        match = rule_a.search(eg)[0]
        plan = ApplyPlan()
        assert plan.add_rewrite(rule_a, match) is True
        assert plan.add_rewrite(rule_b, match) is False
        assert plan.n_deduped == 1

    def test_matches_differing_only_in_rhs_ignored_variables_dedup(self):
        eg = EGraph()
        eg.add_term("(f a b)")
        eg.add_term("(f a c)")
        # The RHS only uses ?x, so both matches instantiate the same term; but
        # they union it with the same root only if the roots coincide.
        rule = Rewrite.parse("drop", "(f ?x ?y)", "(h ?x)")
        matches = rule.search(eg)
        assert len(matches) == 2
        plan = ApplyPlan()
        for m in matches:
            plan.add_rewrite(rule, m)
        # Different root e-classes: both survive despite identical RHS.
        assert plan.n_deduped == 0

        eg2 = EGraph()
        eg2.add_term("(g (f a b) (f a c))")
        f1 = eg2.add_term("(f a b)")
        f2 = eg2.add_term("(f a c)")
        eg2.union(f1, f2)
        eg2.rebuild()
        matches2 = rule.search(eg2)
        assert len(matches2) == 2  # same root, different ?y bindings
        plan2 = ApplyPlan()
        for m in matches2:
            plan2.add_rewrite(rule, m)
        assert plan2.n_deduped == 1

    def test_multi_match_dedup(self):
        rule = MultiPatternRewrite.parse(
            "pair", ["(f ?x)", "(g ?x)"], ["(p ?x)", "(q ?x)"]
        )
        eg = EGraph()
        eg.add_term("(root (f a) (g a))")
        combos = rule.search(eg)
        assert len(combos) == 1
        plan = ApplyPlan()
        assert plan.add_multi(rule, combos[0]) is True
        assert plan.add_multi(rule, combos[0]) is False
        assert plan.n_deduped == 1


class TestExecution:
    def test_unions_are_queued_and_flushed_once(self):
        eg, root = _seeded()
        rule = Rewrite.parse("swap", "(f ?x ?y)", "(f ?y ?x)")
        plan = ApplyPlan()
        for m in rule.search(eg):
            plan.add_rewrite(rule, m)
        unions_before = eg.num_unions
        stats = plan.execute(eg)
        # The swapped term was added, but no union has been performed yet.
        assert stats.n_applied == 1
        assert stats.n_unions_queued == 1
        assert eg.num_unions == unions_before
        assert eg.num_deferred_unions == 1

        merged = eg.flush_deferred_unions()
        assert merged == 1
        assert eg.num_deferred_unions == 0
        eg.rebuild()
        assert eg.represents(root, eg.extract_any(root))

    def test_node_limit_truncates_deterministically(self):
        eg = EGraph()
        eg.add_term("(s (f a) (f b) (f c) (f d))")
        rule = Rewrite.parse("grow", "(f ?x)", "(f (g ?x))")
        plan = ApplyPlan()
        for m in rule.search(eg):
            plan.add_rewrite(rule, m)
        limit = eg.num_enodes + 1
        stats = plan.execute(eg, node_limit=limit)
        assert stats.truncated
        assert stats.n_applied < plan.n_planned

    def test_cycle_filter_skips_are_counted(self):
        eg = EGraph()
        eg.add_term("(f (g a))")
        # (f X) -> X's child g already reaches f? Build a rewrite whose RHS
        # hangs the matched class below one of its own descendants.
        rule = Rewrite.parse("cyc", "(f ?x)", "(h ?x)")
        matches = rule.search(eg)
        plan = ApplyPlan()
        for m in matches:
            plan.add_rewrite(rule, m)
        # VanillaCycleFilter: a leaf that reaches the matched class is vetoed.
        # Here ?x is a strict descendant of the match root, so the veto fires
        # only if leaf reaches root -- it does not, so nothing is skipped.
        stats = plan.execute(eg, cycle_filter=VanillaCycleFilter())
        assert stats.n_skipped_cycle == 0
        assert stats.n_applied == len(matches)

    def test_ground_rhs_shares_hash_cons_work(self):
        eg = EGraph()
        eg.add_term("(f a)")
        eg.add_term("(f b)")
        rule = Rewrite.parse("const", "(f ?x)", "(f (zero one))")
        plan = ApplyPlan()
        for m in rule.search(eg):
            plan.add_rewrite(rule, m)
        stats = plan.execute(eg)
        assert stats.n_applied == 2
        eg.flush_deferred_unions()
        eg.rebuild()
        # The ground RHS fragment exists exactly once.
        assert len(eg.classes_with_op("zero")) == 1


class TestDeferredUnionDeltaInteraction:
    """Delta matching must observe e-classes merged by flush_deferred_unions.

    The runner's rebuild stage flushes the queued unions and only then drains
    the dirty set, so the merges always reach the next iteration's delta.
    These regression tests pin that contract directly at the e-graph /
    matcher level, including the adversarial interleaving where
    ``take_dirty()`` runs *between* plan execution and the flush (draining
    the structural marks of the batch's adds): the flush itself re-dirties
    every merged root, so the delta still covers the merges.
    """

    def test_flushed_merges_survive_interleaved_take_dirty(self):
        from repro.egraph.language import ENode

        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        eg.union_deferred(a, b)
        # Interleaved drain (e.g. an observer inspecting the delta) between
        # plan execution and the flush.
        eg.take_dirty()
        eg.flush_deferred_unions()
        eg.rebuild()
        assert eg.find(a) in eg.take_dirty()

    def test_delta_search_observes_flushed_merge(self):
        from repro.egraph.language import ENode
        from repro.egraph.machine import IncrementalMatcher
        from repro.egraph.pattern import Pattern

        eg = EGraph()
        a = eg.add(ENode("a"))
        b = eg.add(ENode("b"))
        gb = eg.add(ENode("g", (b,)))
        matcher = IncrementalMatcher(Pattern.parse("(g (f ?x))"))
        assert matcher.search(eg) == []  # seeds the incremental cache
        eg.take_dirty()

        # Batched apply: add an RHS against the frozen union-find, queue the
        # union, and interleave a take_dirty before the flush.
        fa = eg.add(ENode("f", (a,)))
        eg.union_deferred(b, fa)
        eg.take_dirty()
        eg.flush_deferred_unions()
        eg.rebuild()

        delta = eg.take_dirty()
        matches = matcher.search(eg, delta=delta)
        assert [m.eclass for m in matches] == [eg.find(gb)]
        assert matches[0].subst == {"x": eg.find(a)}
        # And the delta search equals a fresh full search.
        assert matches == IncrementalMatcher(Pattern.parse("(g (f ?x))")).search(eg)


class TestPipelineEquivalence:
    def test_batched_apply_equals_immediate_apply(self):
        """Plan execution + flush + rebuild reaches the same e-graph as the
        legacy interleaved apply (adds and unions are the same facts)."""
        rule = Rewrite.parse("swap", "(f ?x ?y)", "(f ?y ?x)")

        eg_batch, _ = _seeded()
        plan = ApplyPlan()
        for m in rule.search(eg_batch):
            plan.add_rewrite(rule, m)
        plan.execute(eg_batch)
        eg_batch.flush_deferred_unions()
        eg_batch.rebuild()

        eg_imm, _ = _seeded()
        for m in rule.search(eg_imm):
            rule.apply_match(eg_imm, m)
        eg_imm.rebuild()

        assert eg_batch.num_enodes == eg_imm.num_enodes
        assert eg_batch.num_eclasses == eg_imm.num_eclasses
